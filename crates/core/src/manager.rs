//! The run-time manager: the engine behind the paper's "FPGA
//! Rearrangement and Programming tool" (§4).
//!
//! Owns the device, the area bookkeeping and every loaded function.
//! Incoming functions are placed on-line; when fragmentation blocks a
//! request the manager plans a rearrangement (`rtm-place`'s
//! local-repacking / ordered-compaction planner) and executes it with
//! **dynamic relocation** — staged, cell by cell, while the moved
//! functions keep running. A complete configuration copy is kept for
//! recovery, exactly as the paper's tool does.

use crate::error::CoreError;
use crate::relocation::{relocate_cell, RelocationOptions, RelocationReport, StepRecord};
use rtm_fpga::config::ConfigMemory;
use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_fpga::part::Part;
use rtm_fpga::Device;
use rtm_netlist::techmap::MappedNetlist;
use rtm_place::alloc::Strategy;
use rtm_place::defrag::{make_room, plan_compaction, predict_metrics, Move};
use rtm_place::frag::FragMetrics;
use rtm_place::TaskArena;
use rtm_sim::design::{implement_reserved, PlacedDesign};
use rtm_sim::place::CellLoc;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a loaded function.
pub type FunctionId = u64;

/// A function resident on the device.
#[derive(Debug, Clone)]
pub struct LoadedFunction {
    /// The mapped design.
    pub design: MappedNetlist,
    /// Current region.
    pub region: Rect,
    /// Its implementation (placement + live nets).
    pub placed: PlacedDesign,
}

/// A seated admission reservation: the decide half of the two-phase
/// load pipeline. [`RunTimeManager::reserve_room`] executes the
/// rearrangement plan and reserves an arena region for the incoming
/// function — accounting it in every fragmentation metric and summary —
/// but writes **no cells, nets or frames**. The ticket is epoch-stamped
/// (the reservation itself bumped the epoch) and must be settled by
/// exactly one of [`RunTimeManager::execute_reserved`] (implement the
/// design inside the reserved region) or
/// [`RunTimeManager::cancel_reservation`] (release the region again).
/// Fields are private so a ticket can only come from this manager's own
/// reservation path.
#[derive(Debug, Clone)]
pub struct AdmissionTicket {
    id: FunctionId,
    epoch: u64,
    region: Rect,
    moves: Vec<Move>,
    relocations: Vec<RelocationReport>,
}

impl AdmissionTicket {
    /// The reserved function id ([`RunTimeManager::cancel_reservation`]
    /// takes it back on the failure path).
    pub fn id(&self) -> FunctionId {
        self.id
    }

    /// The mutation epoch right after the reservation was seated.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The region the reservation holds.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Rearrangement moves that were executed to open the room.
    pub fn moves(&self) -> &[Move] {
        &self.moves
    }

    /// CLBs of running logic the rearrangement relocated.
    pub fn cells_moved(&self) -> u32 {
        self.moves.iter().map(Move::cells_moved).sum()
    }
}

/// Summary returned by [`RunTimeManager::load`].
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The new function's id.
    pub id: FunctionId,
    /// Where it was placed.
    pub region: Rect,
    /// Rearrangement moves that were executed to make room (empty if the
    /// request fitted immediately).
    pub moves: Vec<Move>,
    /// Relocation reports for every cell moved during rearrangement.
    pub relocations: Vec<RelocationReport>,
}

impl LoadReport {
    /// Total configuration frames written by the rearrangement (zero
    /// when the request fitted immediately).
    pub fn frames_total(&self) -> usize {
        self.relocations.iter().map(|r| r.frames_total()).sum()
    }

    /// CLBs of running logic that were relocated to make room.
    pub fn cells_moved(&self) -> u32 {
        self.moves.iter().map(Move::cells_moved).sum()
    }
}

/// Counters of the plan-reuse admission pipeline: how often the manager
/// planned, how often callers handed a previously computed plan back
/// for execution, and how the per-device summary cache behaved.
///
/// A frag-aware fleet admission historically ran `make_room` three
/// times (routing preview, admission feasibility, load execution);
/// these counters make the collapse to one planning pass — and any
/// future regression — visible in reports and CI baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// `make_room` planning passes executed (previews, `plan_room`,
    /// and internal re-planning on loads without a valid plan).
    pub make_room_calls: u64,
    /// Ordered-compaction planning passes (`plan_defrag`, defrag-gain
    /// summaries, and internal re-planning inside `defragment`).
    pub compaction_plans: u64,
    /// [`RunTimeManager::preview_admission`] calls (each is also one
    /// `make_room` pass).
    pub previews: u64,
    /// Caller-held plans executed as-is: the epoch stamp matched, so no
    /// re-planning happened inside
    /// [`RunTimeManager::load_with_plan`] /
    /// [`RunTimeManager::defragment_with_plan`].
    pub plans_reused: u64,
    /// Caller-held plans rejected as stale (epoch mismatch) and
    /// re-planned instead of executed.
    pub plans_invalidated: u64,
    /// [`RunTimeManager::summary`] calls answered from the epoch-keyed
    /// cache.
    pub summary_hits: u64,
    /// [`RunTimeManager::summary`] calls that had to recompute.
    pub summary_misses: u64,
}

impl PlanStats {
    /// The counter movement since `base` (field-wise difference) — how
    /// a service turns the manager's lifetime totals into per-run
    /// deltas.
    pub fn delta_since(self, base: PlanStats) -> PlanStats {
        PlanStats {
            make_room_calls: self.make_room_calls - base.make_room_calls,
            compaction_plans: self.compaction_plans - base.compaction_plans,
            previews: self.previews - base.previews,
            plans_reused: self.plans_reused - base.plans_reused,
            plans_invalidated: self.plans_invalidated - base.plans_invalidated,
            summary_hits: self.summary_hits - base.summary_hits,
            summary_misses: self.summary_misses - base.summary_misses,
        }
    }

    /// Field-wise accumulation (fleet roll-up over shard reports).
    pub fn merge(&mut self, other: PlanStats) {
        self.make_room_calls += other.make_room_calls;
        self.compaction_plans += other.compaction_plans;
        self.previews += other.previews;
        self.plans_reused += other.plans_reused;
        self.plans_invalidated += other.plans_invalidated;
        self.summary_hits += other.summary_hits;
        self.summary_misses += other.summary_misses;
    }
}

impl fmt::Display for PlanStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} make_room ({} previews), {} compactions, {} plans reused, \
             {} invalidated, summary cache {}/{} hits",
            self.make_room_calls,
            self.previews,
            self.compaction_plans,
            self.plans_reused,
            self.plans_invalidated,
            self.summary_hits,
            self.summary_hits + self.summary_misses,
        )
    }
}

/// A rearrangement plan stamped with the manager epoch — and the
/// request shape — it was computed for.
/// [`RunTimeManager::load_with_plan`] executes it without re-planning
/// as long as both stamps still match — the heart of the plan-reuse
/// admission pipeline. Fields are private so a plan can only come from
/// this manager's own planner and its stamps cannot be forged; a plan
/// handed back for a different shape is invalidated exactly like a
/// stale one (its moves only make room for the shape it was planned
/// for).
#[derive(Debug, Clone, PartialEq)]
pub struct RoomPlan {
    epoch: u64,
    rows: u16,
    cols: u16,
    moves: Vec<Move>,
}

impl RoomPlan {
    /// The mutation epoch the plan was computed at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The request shape the plan makes room for.
    pub fn shape(&self) -> (u16, u16) {
        (self.rows, self.cols)
    }

    /// True when the plan is executable as-is for a `rows`×`cols`
    /// request on a manager at `epoch` (both stamps match).
    fn valid_for(&self, epoch: u64, rows: u16, cols: u16) -> bool {
        self.epoch == epoch && self.rows == rows && self.cols == cols
    }

    /// The planned moves (empty = the request fits as-is).
    pub fn moves(&self) -> &[Move] {
        &self.moves
    }

    /// True when no rearrangement is needed.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// CLBs of running logic the plan would relocate.
    pub fn cells_moved(&self) -> u32 {
        self.moves.iter().map(Move::cells_moved).sum()
    }
}

/// An ordered-compaction plan stamped with its manager epoch, carrying
/// the fragmentation metrics it was planned against and the metrics it
/// predicts. [`RunTimeManager::defragment_with_plan`] executes it
/// without re-planning while the stamp matches.
#[derive(Debug, Clone, PartialEq)]
pub struct DefragPlan {
    epoch: u64,
    moves: Vec<Move>,
    before: FragMetrics,
    predicted: FragMetrics,
}

impl DefragPlan {
    /// The mutation epoch the plan was computed at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The planned compaction moves.
    pub fn moves(&self) -> &[Move] {
        &self.moves
    }

    /// Fragmentation metrics at planning time.
    pub fn before(&self) -> FragMetrics {
        self.before
    }

    /// Predicted metrics after executing the plan.
    pub fn predicted(&self) -> FragMetrics {
        self.predicted
    }

    /// Predicted drop of the fragmentation index (zero when the plan is
    /// empty or would not help).
    pub fn predicted_gain(&self) -> f64 {
        if self.moves.is_empty() {
            return 0.0;
        }
        (self.before.fragmentation() - self.predicted.fragmentation()).max(0.0)
    }

    /// True when executing the plan is predicted to actually lower the
    /// fragmentation index — the execution gate `defragment` applies.
    pub fn is_worthwhile(&self) -> bool {
        !self.moves.is_empty() && self.predicted.fragmentation() < self.before.fragmentation()
    }
}

/// A cheap, cacheable snapshot of one device's state — what a fleet
/// router reads per candidate before deciding which few devices deserve
/// an expensive admission preview. Recomputed only when the manager's
/// mutation epoch moves; [`PlanStats::summary_hits`] counts how often
/// the cache answered. The predicted defragmentation gain is deliberately
/// *not* part of the summary: it costs a compaction planning pass, so it
/// lives behind its own lazy epoch-keyed cache
/// ([`RunTimeManager::predicted_defrag_gain`]) and is computed only when
/// something (the fleet defrag trigger) actually asks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSummary {
    /// The mutation epoch the summary describes.
    pub epoch: u64,
    /// Fragmentation metrics (utilisation, largest free rectangle,
    /// fragmentation index all derive from this).
    pub frag: FragMetrics,
}

/// The non-mutating preview returned by
/// [`RunTimeManager::preview_admission`]: what loading a function of the
/// requested shape would do to this device — including the epoch-stamped
/// [`RoomPlan`] the caller can hand straight to
/// [`RunTimeManager::load_with_plan`] so admission never re-plans.
#[derive(Debug, Clone)]
pub struct AdmissionPreview {
    /// The rearrangement plan the load would execute first (empty moves
    /// if the request fits as-is), reusable via
    /// [`RunTimeManager::load_with_plan`].
    pub plan: RoomPlan,
    /// The region the allocator would hand the function.
    pub region: Rect,
    /// Predicted fragmentation metrics after rearrangement *and*
    /// placement.
    pub after: FragMetrics,
}

impl AdmissionPreview {
    /// The rearrangement moves the load would execute first.
    pub fn moves(&self) -> &[Move] {
        self.plan.moves()
    }

    /// CLBs of running logic the rearrangement would relocate.
    pub fn cells_moved(&self) -> u32 {
        self.plan.cells_moved()
    }
}

/// A cross-device migration plan: the evidence that moving one resident
/// function from a *source* manager onto a *target* manager is
/// executable right now, stamped on **both** sides. The source side
/// carries the epoch the function's geometry was read at; the target
/// side carries an epoch-stamped [`RoomPlan`] from the target's own
/// planner. Either stamp going stale means the plan describes a layout
/// that no longer exists, and the plan must be re-planned, never
/// executed — [`RunTimeManager::migration_plan_valid`] is the source
/// check, and [`RunTimeManager::readmit_function`] applies the standard
/// room-plan revalidation on the target.
#[derive(Debug, Clone)]
pub struct MigrationPlan {
    src_epoch: u64,
    id: FunctionId,
    rows: u16,
    cols: u16,
    room: RoomPlan,
}

impl MigrationPlan {
    /// The function the plan would migrate (source-manager id).
    pub fn id(&self) -> FunctionId {
        self.id
    }

    /// The source-manager epoch the plan was computed at.
    pub fn src_epoch(&self) -> u64 {
        self.src_epoch
    }

    /// The migrating function's shape.
    pub fn shape(&self) -> (u16, u16) {
        (self.rows, self.cols)
    }

    /// CLBs the function occupies (the port-time cost of copying it).
    pub fn cells(&self) -> u32 {
        self.rows as u32 * self.cols as u32
    }

    /// The target-side rearrangement plan the readmission would execute
    /// first (empty when the function fits the target as-is).
    pub fn room(&self) -> &RoomPlan {
        &self.room
    }
}

/// A resident function snapshotted off its device mid-migration by
/// [`RunTimeManager::extract_function`]: everything needed to
/// re-implement it on another manager
/// ([`RunTimeManager::readmit_function`]) — and everything needed to
/// put it back *exactly* as it was on the source
/// ([`RunTimeManager::restore_function`]) should the readmission fail.
/// The pre-extraction configuration snapshot is the migration's
/// checkpoint: restore is a frame-exact rollback, so a failed migration
/// can never leave orphan state on either device.
#[derive(Debug, Clone)]
pub struct ExtractedFunction {
    id: FunctionId,
    design: MappedNetlist,
    region: Rect,
    placed: PlacedDesign,
    /// Live storage-element state per design cell, captured at
    /// extraction so the readmitted copy resumes instead of resetting.
    states: Vec<bool>,
    /// Full source-configuration snapshot taken *before* the extraction
    /// — the checkpoint a failed migration restores from.
    pre_config: ConfigMemory,
    /// The source epoch right after the extraction; restore demands it
    /// still matches (nothing else may have touched the source since).
    post_epoch: u64,
}

impl ExtractedFunction {
    /// The id the function had on the source manager.
    pub fn source_id(&self) -> FunctionId {
        self.id
    }

    /// The mapped design.
    pub fn design(&self) -> &MappedNetlist {
        &self.design
    }

    /// The region the function occupied on the source.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// The function's shape (`rows`, `cols`).
    pub fn shape(&self) -> (u16, u16) {
        (self.region.rows, self.region.cols)
    }

    /// CLBs the function occupies — the reconfiguration-port cost of
    /// copying it off or onto a device, in the same unit as
    /// [`Move::cells_moved`].
    pub fn cells(&self) -> u32 {
        self.region.area()
    }

    /// The source-side implementation (placement + nets) at extraction
    /// time — what the readback-equivalence invariant compares against.
    pub fn placed(&self) -> &PlacedDesign {
        &self.placed
    }

    /// The captured storage-element state, indexed like
    /// `design().cells`.
    pub fn states(&self) -> &[bool] {
        &self.states
    }

    /// The pre-extraction source-configuration snapshot (readback of
    /// the whole device as it was with the function still resident).
    pub fn pre_config(&self) -> &ConfigMemory {
        &self.pre_config
    }
}

/// Summary returned by [`RunTimeManager::defragment`]: the executed
/// compaction plan, the per-cell relocation traffic, and the
/// fragmentation before/after — the evidence that a service-initiated
/// defragmentation cycle actually helped.
#[derive(Debug, Clone)]
pub struct DefragReport {
    /// The function moves the compaction executed.
    pub moves: Vec<Move>,
    /// Relocation reports for every cell moved.
    pub relocations: Vec<RelocationReport>,
    /// Fragmentation metrics before the cycle.
    pub before: FragMetrics,
    /// Fragmentation metrics after the cycle.
    pub after: FragMetrics,
}

impl DefragReport {
    /// Total configuration frames written across all relocations.
    pub fn frames_total(&self) -> usize {
        self.relocations.iter().map(|r| r.frames_total()).sum()
    }

    /// CLBs of running logic relocated.
    pub fn cells_moved(&self) -> u32 {
        self.moves.iter().map(Move::cells_moved).sum()
    }

    /// How much the fragmentation index dropped (positive = improved).
    pub fn improvement(&self) -> f64 {
        self.before.fragmentation() - self.after.fragmentation()
    }
}

impl fmt::Display for DefragReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "defrag: {} moves, {} CLBs, {} frames, frag {:.3} -> {:.3}",
            self.moves.len(),
            self.cells_moved(),
            self.frames_total(),
            self.before.fragmentation(),
            self.after.fragmentation(),
        )
    }
}

/// The run-time manager. See the [crate-level docs](crate).
#[derive(Debug)]
pub struct RunTimeManager {
    dev: Device,
    arena: TaskArena,
    functions: BTreeMap<FunctionId, LoadedFunction>,
    /// Regions reserved by seated [`AdmissionTicket`]s: arena tasks that
    /// have no function-table entry yet because their design has not
    /// been implemented. Every entry is settled by `execute_reserved`
    /// or `cancel_reservation` — [`RunTimeManager::bookkeeping_consistent`]
    /// counts them against the arena.
    reserved: BTreeMap<FunctionId, Rect>,
    next_id: FunctionId,
    recovery: ConfigMemory,
    /// Allocation strategy for incoming functions.
    pub strategy: Strategy,
    /// Mutation epoch: bumped on every arena-visible change (load,
    /// unload, relocation, defragmentation). Plans and summaries are
    /// stamped with it; a mismatch means they describe a stale layout.
    epoch: u64,
    /// Planning counters (interior mutability: the non-mutating planning
    /// API takes `&self`).
    stats: Cell<PlanStats>,
    /// Epoch-keyed cache of the fragmentation metrics.
    frag_cache: Cell<Option<(u64, FragMetrics)>>,
    /// Epoch-keyed cache of the routing summary.
    summary_cache: Cell<Option<DeviceSummary>>,
    /// Lazy cache of the whole compaction plan (the plan is itself
    /// epoch-stamped, so the stamp doubles as the cache key). Computing
    /// it costs a compaction planning pass, and most queries — routing
    /// summaries with the fleet trigger disabled — never need it; a
    /// `RefCell` (not a `Cell`) because the non-`Copy` move list must
    /// live here so a fleet trigger that already ranked devices by
    /// predicted gain can execute the winner's plan without planning
    /// the same cycle again.
    defrag_cache: RefCell<Option<DefragPlan>>,
}

// Compile-time `Send` pin — the concurrency-readiness ground truth the
// parallel fleet engine lands on. The manager's interior mutability
// (`Cell`/`RefCell` caches for the non-mutating planning API) is `Send`
// but deliberately not `Sync`: a manager belongs to exactly one shard
// and crosses threads only whole. A field that broke `Send` (an `Rc`,
// a raw pointer) would fail this assertion at compile time.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<RunTimeManager>();
};

impl RunTimeManager {
    /// A manager over a blank device.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtm_core::RunTimeManager;
    /// use rtm_fpga::part::Part;
    ///
    /// let mgr = RunTimeManager::new(Part::Xcv50);
    /// assert_eq!(mgr.status().functions, 0);
    /// assert_eq!(mgr.fragmentation().utilisation(), 0.0);
    /// ```
    pub fn new(part: Part) -> Self {
        let dev = Device::new(part);
        let arena = TaskArena::new(dev.bounds());
        let recovery = dev.config().snapshot();
        RunTimeManager {
            dev,
            arena,
            functions: BTreeMap::new(),
            reserved: BTreeMap::new(),
            next_id: 1,
            recovery,
            strategy: Strategy::BestFit,
            epoch: 0,
            stats: Cell::new(PlanStats::default()),
            frag_cache: Cell::new(None),
            summary_cache: Cell::new(None),
            defrag_cache: RefCell::new(None),
        }
    }

    /// The current mutation epoch. Every arena-visible change (load,
    /// unload, relocation, executed defragmentation) advances it; plans
    /// stamped with an older epoch are stale and will be re-planned
    /// instead of executed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Lifetime planning counters (see [`PlanStats`]). A service takes
    /// per-run deltas with [`PlanStats::delta_since`].
    pub fn plan_stats(&self) -> PlanStats {
        self.stats.get()
    }

    /// Advances the mutation epoch. Every arena-visible mutation must
    /// route through here — the epoch is the cache key for every plan,
    /// summary and fragmentation sample, so a mutation that skipped the
    /// bump would let a stale plan execute. `rtm-lint`'s
    /// epoch-discipline rule pins this mechanically: arena mutators in
    /// this file must call `bump_epoch`, and nothing else may write
    /// `self.epoch`.
    fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    fn bump_stats(&self, f: impl FnOnce(&mut PlanStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    /// The device (read-only).
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Loaded functions.
    pub fn functions(&self) -> impl Iterator<Item = (FunctionId, &LoadedFunction)> {
        self.functions.iter().map(|(id, f)| (*id, f))
    }

    /// One loaded function.
    pub fn function(&self, id: FunctionId) -> Option<&LoadedFunction> {
        self.functions.get(&id)
    }

    /// Current fragmentation metrics (epoch-cached: recomputed only
    /// after a mutation, so event loops can sample freely).
    pub fn fragmentation(&self) -> FragMetrics {
        if let Some((epoch, m)) = self.frag_cache.get() {
            if epoch == self.epoch {
                return m;
            }
        }
        let m = self.arena.fragmentation();
        self.frag_cache.set(Some((self.epoch, m)));
        m
    }

    /// The cheap routing summary of this device — fragmentation metrics
    /// stamped with the mutation epoch. Cached — repeated calls between
    /// mutations cost nothing (counted in [`PlanStats::summary_hits`]),
    /// which is what lets a fleet router consult every device on every
    /// arrival without re-measuring the world each time. The predicted
    /// defragmentation gain is served separately (and lazily) by
    /// [`RunTimeManager::predicted_defrag_gain`], because it costs a
    /// compaction planning pass the routing path never needs.
    pub fn summary(&self) -> DeviceSummary {
        if let Some(s) = self.summary_cache.get() {
            if s.epoch == self.epoch {
                self.bump_stats(|st| st.summary_hits += 1);
                return s;
            }
        }
        self.bump_stats(|st| st.summary_misses += 1);
        let s = DeviceSummary {
            epoch: self.epoch,
            frag: self.fragmentation(),
        };
        self.summary_cache.set(Some(s));
        s
    }

    /// Plans — without executing anything — the rearrangement that
    /// [`RunTimeManager::load`] would run to free a `rows`×`cols`
    /// region: an empty plan when the request fits as-is, a move list
    /// when rearrangement would be needed, `None` when even compaction
    /// cannot help. The returned [`RoomPlan`] is epoch-stamped: hand it
    /// to [`RunTimeManager::load_with_plan`] and the load executes it
    /// without planning again.
    pub fn plan_room(&self, rows: u16, cols: u16) -> Option<RoomPlan> {
        self.bump_stats(|s| s.make_room_calls += 1);
        let moves = make_room(&self.arena, rows, cols)?;
        Some(RoomPlan {
            epoch: self.epoch,
            rows,
            cols,
            moves,
        })
    }

    /// Revalidates a caller-held room plan: returns `plan` itself when
    /// its epoch *and shape* stamps still match (free), otherwise
    /// counts the invalidation and re-plans from the current layout.
    /// `None` when the device can no longer make room at all.
    pub fn revalidate_room_plan(
        &self,
        rows: u16,
        cols: u16,
        plan: Option<RoomPlan>,
    ) -> Option<RoomPlan> {
        match plan {
            Some(p) if p.valid_for(self.epoch, rows, cols) => Some(p),
            Some(_) => {
                self.bump_stats(|s| s.plans_invalidated += 1);
                self.plan_room(rows, cols)
            }
            None => self.plan_room(rows, cols),
        }
    }

    /// Plans — without executing anything — the ordered compaction,
    /// stamped with the current epoch and carrying its predicted
    /// metrics. [`RunTimeManager::defragment_with_plan`] executes it
    /// without re-planning while the stamp matches;
    /// [`DefragPlan::is_worthwhile`] is the gate `defragment` applies
    /// before moving anything.
    pub fn plan_defrag(&self) -> DefragPlan {
        self.bump_stats(|s| s.compaction_plans += 1);
        let before = self.fragmentation();
        let moves = plan_compaction(&self.arena);
        let predicted = if moves.is_empty() {
            before
        } else {
            predict_metrics(&self.arena, &moves)
        };
        DefragPlan {
            epoch: self.epoch,
            moves,
            before,
            predicted,
        }
    }

    /// The compaction plan [`RunTimeManager::defragment`] would execute
    /// now, answered from the lazy epoch-keyed plan cache: the first
    /// query after a mutation pays one compaction planning pass
    /// (exactly like [`RunTimeManager::predicted_defrag_gain`], which
    /// is a view of this cache), every later one is free. A fleet
    /// trigger that ranked devices by predicted gain hands this cached
    /// plan straight to [`RunTimeManager::defragment_with_plan`], so a
    /// fleet-triggered cycle is plan-free end to end — ranking already
    /// paid the only pass.
    pub fn cached_defrag_plan(&self) -> DefragPlan {
        if let Some(p) = self.defrag_cache.borrow().as_ref() {
            if p.epoch == self.epoch {
                return p.clone();
            }
        }
        let p = self.plan_defrag();
        *self.defrag_cache.borrow_mut() = Some(p.clone());
        p
    }

    /// Predicted drop of the fragmentation index if
    /// [`RunTimeManager::defragment`] ran now (zero when the cycle would
    /// be skipped as useless). Lazily epoch-cached in the same plan
    /// cache as [`RunTimeManager::cached_defrag_plan`]: the first query
    /// after a mutation pays one compaction planning pass, every later
    /// one reads the gain through the cache borrow (no plan clone) — so
    /// a fleet trigger ranking all devices costs one pass per *mutated*
    /// device per query wave, and routing paths that never ask pay
    /// nothing at all.
    pub fn predicted_defrag_gain(&self) -> f64 {
        if let Some(p) = self.defrag_cache.borrow().as_ref() {
            if p.epoch == self.epoch {
                return p.predicted_gain();
            }
        }
        let p = self.plan_defrag();
        let gain = p.predicted_gain();
        *self.defrag_cache.borrow_mut() = Some(p);
        gain
    }

    /// Previews — without executing anything — the full admission of a
    /// `rows`×`cols` function: the rearrangement [`RunTimeManager::load`]
    /// would execute, the region the allocator would then hand out, and
    /// the fragmentation metrics the device would be left with. `None`
    /// when even compaction cannot make room.
    ///
    /// This is the cross-device routing primitive: a fleet-level router
    /// can ask every device "what would admitting this cost you and what
    /// state would it leave you in" and pick the device whose
    /// post-placement fragmentation is lowest.
    pub fn preview_admission(&self, rows: u16, cols: u16) -> Option<AdmissionPreview> {
        self.bump_stats(|s| {
            s.previews += 1;
            s.make_room_calls += 1;
        });
        let moves = make_room(&self.arena, rows, cols)?;
        let mut scratch = self.arena.clone();
        for mv in &moves {
            scratch.relocate(mv.id, mv.to).ok()?;
        }
        // An id no real function can hold: the preview allocation exists
        // only on the scratch copy.
        let region = scratch
            .allocate(FunctionId::MAX, rows, cols, self.strategy)
            .ok()?;
        Some(AdmissionPreview {
            plan: RoomPlan {
                epoch: self.epoch,
                rows,
                cols,
                moves,
            },
            region,
            after: scratch.fragmentation(),
        })
    }

    /// Fragmentation metrics this device would show if `id` were
    /// extracted (computed on a scratch copy, nothing mutates). `None`
    /// for unknown ids. This is the rebalancing planner's scoring
    /// primitive: the difference to the current metrics, per CLB of the
    /// function, says how much comb-repair one migration buys.
    pub fn preview_release(&self, id: FunctionId) -> Option<FragMetrics> {
        let mut scratch = self.arena.clone();
        scratch.release(id).ok()?;
        Some(scratch.fragmentation())
    }

    /// Plans — without executing anything — the migration of resident
    /// function `id` from this manager onto `target`: the returned
    /// [`MigrationPlan`] carries this manager's epoch stamp and the
    /// target's epoch-stamped [`RoomPlan`] for the function's shape.
    /// `None` when `id` is unknown or the target cannot make room even
    /// with compaction.
    pub fn plan_migration(&self, id: FunctionId, target: &RunTimeManager) -> Option<MigrationPlan> {
        let region = self.arena.task_rect(id)?;
        let room = target.plan_room(region.rows, region.cols)?;
        Some(MigrationPlan {
            src_epoch: self.epoch,
            id,
            rows: region.rows,
            cols: region.cols,
            room,
        })
    }

    /// True while `plan` is still executable on this (source) manager:
    /// the epoch stamp matches and the function still holds the shape
    /// the plan was computed for. A stale plan must be re-planned,
    /// never executed — its geometry (and the target's room plan)
    /// describe a layout that no longer exists.
    pub fn migration_plan_valid(&self, plan: &MigrationPlan) -> bool {
        plan.src_epoch == self.epoch
            && self
                .arena
                .task_rect(plan.id)
                .map(|r| (r.rows, r.cols) == (plan.rows, plan.cols))
                .unwrap_or(false)
    }

    /// Snapshots resident function `id` and removes it from this
    /// device: the outbound half of a cross-device migration. The
    /// returned [`ExtractedFunction`] carries the design, the live
    /// storage state, the source implementation, and a pre-extraction
    /// configuration checkpoint — enough to re-implement the function
    /// on another manager ([`RunTimeManager::readmit_function`]) or to
    /// roll this device back exactly
    /// ([`RunTimeManager::restore_function`]) if the readmission fails.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Place`] for unknown ids; device errors from
    /// the teardown leave the same state an [`RunTimeManager::unload`]
    /// failure would.
    pub fn extract_function(&mut self, id: FunctionId) -> Result<ExtractedFunction, CoreError> {
        let f = self
            .functions
            .get(&id)
            .ok_or(CoreError::Place(rtm_place::PlaceError::UnknownTask { id }))?;
        let pre_config = self.dev.config().snapshot();
        let mut states = Vec::with_capacity(f.design.cells.len());
        for (i, cell) in f.design.cells.iter().enumerate() {
            let loc = f.placed.cell_loc(i);
            states.push(if cell.storage.is_sequential() {
                self.dev.cell_state(loc.0, loc.1)?
            } else {
                false
            });
        }
        let snapshot = ExtractedFunction {
            id,
            design: f.design.clone(),
            region: f.region,
            placed: f.placed.clone(),
            states,
            pre_config,
            post_epoch: 0, // stamped below, after the teardown
        };
        self.unload(id)?;
        Ok(ExtractedFunction {
            post_epoch: self.epoch,
            ..snapshot
        })
    }

    /// Re-implements an extracted function on this device — the inbound
    /// half of a cross-device migration — through the plan-reuse
    /// pipeline: `plan` is validated exactly like any caller-held
    /// [`RoomPlan`] (a stale or wrong-shape plan is counted invalidated
    /// and re-planned, never executed), the load executes it, and the
    /// captured storage-element state is written into the new cells so
    /// the function *resumes* rather than restarting.
    ///
    /// # Errors
    ///
    /// As [`RunTimeManager::load`]; a failed implementation rolls this
    /// device back to its checkpoint and leaves no orphan state, so the
    /// caller can still [`RunTimeManager::restore_function`] the
    /// extracted snapshot on the source.
    pub fn readmit_function(
        &mut self,
        f: &ExtractedFunction,
        plan: &RoomPlan,
        observer: impl FnMut(&Device, &PlacedDesign, &StepRecord),
    ) -> Result<LoadReport, CoreError> {
        let (rows, cols) = f.shape();
        let lr = self.load_with_plan(&f.design, rows, cols, plan, observer)?;
        // Carry the live state over: the paper's relocation never
        // resets a moved cell, and neither does a migration.
        let locs: Vec<CellLoc> = self
            .functions
            .get(&lr.id)
            .ok_or_else(|| CoreError::DesignMismatch {
                detail: format!(
                    "function {} missing from the table right after its load",
                    lr.id
                ),
            })?
            .placed
            .placement
            .cell_locs
            .clone();
        for (i, cell) in f.design.cells.iter().enumerate() {
            if cell.storage.is_sequential() {
                let loc = locs[i];
                self.dev.set_cell_state(loc.0, loc.1, f.states[i])?;
            }
        }
        self.checkpoint();
        Ok(lr)
    }

    /// Puts an extracted function back onto this (source) device by
    /// rolling the configuration back to the extraction checkpoint —
    /// the recovery path of a failed migration. The rollback is
    /// frame-exact: after it, the device configuration equals the
    /// pre-extraction snapshot bit for bit, the region is re-claimed in
    /// the arena, and the function table entry is reinstated (under a
    /// fresh id). Returns the new id.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DesignMismatch`] if this manager mutated
    /// since the extraction (the checkpoint no longer composes with the
    /// device state) or belongs to a different part, and
    /// [`CoreError::Place`] if the original region is no longer free.
    pub fn restore_function(&mut self, f: &ExtractedFunction) -> Result<FunctionId, CoreError> {
        if f.pre_config.part() != self.dev.part() {
            return Err(CoreError::DesignMismatch {
                detail: format!(
                    "restore of a {} extraction onto a {} device",
                    f.pre_config.part(),
                    self.dev.part()
                ),
            });
        }
        if self.epoch != f.post_epoch {
            return Err(CoreError::DesignMismatch {
                detail: "source mutated since extraction; checkpoint is stale".into(),
            });
        }
        let id = self.next_id;
        self.arena.allocate_at(id, f.region)?;
        self.bump_epoch();
        for addr in self.dev.config().diff_frames(&f.pre_config) {
            let frame = f.pre_config.read_frame(addr)?;
            self.dev.write_frame(addr, frame)?;
        }
        self.functions.insert(
            id,
            LoadedFunction {
                design: f.design.clone(),
                region: f.region,
                placed: f.placed.clone(),
            },
        );
        self.next_id += 1;
        self.checkpoint();
        Ok(id)
    }

    /// True while the function table and the area bookkeeping agree:
    /// same ids, same regions, and every placed cell slot of every
    /// function configured on the device. The invariant every migration
    /// path (extract, readmit, restore, failure rollback) must
    /// preserve — orphan arena tasks poison compaction plans, orphan
    /// cells poison later loads.
    pub fn bookkeeping_consistent(&self) -> bool {
        let tasks = self.arena.tasks();
        if tasks.len() != self.functions.len() + self.reserved.len() {
            return false;
        }
        // A seated reservation is an arena task without a function-table
        // entry (its design is not implemented yet): it must hold
        // exactly the region its ticket reserved, and nothing else.
        if !self
            .reserved
            .iter()
            .all(|(id, region)| tasks.get(id) == Some(region) && !self.functions.contains_key(id))
        {
            return false;
        }
        self.functions.iter().all(|(id, f)| {
            tasks.get(id) == Some(&f.region)
                && f.placed.placement.cell_locs.iter().all(|loc| {
                    self.dev
                        .clb(loc.0)
                        .map(|clb| clb.cells[loc.1].is_used())
                        .unwrap_or(false)
                })
        })
    }

    /// Runs a full defragmentation cycle: plans an ordered compaction
    /// (`rtm-place`'s [`plan_compaction`]) and executes every move with
    /// staged dynamic relocation — the moved functions keep running
    /// throughout, which is the paper's core claim. `observer` is
    /// invoked after every relocation step.
    ///
    /// # Errors
    ///
    /// Propagates engine errors if any cell move fails; the area
    /// bookkeeping of already-executed moves remains consistent.
    pub fn defragment(
        &mut self,
        observer: impl FnMut(&Device, &PlacedDesign, &StepRecord),
    ) -> Result<DefragReport, CoreError> {
        let plan = self.plan_defrag();
        self.execute_defrag(plan, observer)
    }

    /// Like [`RunTimeManager::defragment`], but executes a previously
    /// returned [`DefragPlan`] instead of planning again. The plan's
    /// epoch stamp is checked first: a stale plan (the layout mutated
    /// since it was computed) is *not* executed — it is counted in
    /// [`PlanStats::plans_invalidated`] and the cycle re-plans from the
    /// current layout. A valid plan is counted in
    /// [`PlanStats::plans_reused`] and costs no planning pass — this is
    /// how a fleet trigger that already ranked devices by predicted
    /// gain avoids paying for the winner's compaction plan twice.
    ///
    /// # Errors
    ///
    /// As [`RunTimeManager::defragment`].
    pub fn defragment_with_plan(
        &mut self,
        plan: &DefragPlan,
        observer: impl FnMut(&Device, &PlacedDesign, &StepRecord),
    ) -> Result<DefragReport, CoreError> {
        let plan = if plan.epoch == self.epoch {
            self.bump_stats(|s| s.plans_reused += 1);
            plan.clone()
        } else {
            self.bump_stats(|s| s.plans_invalidated += 1);
            self.plan_defrag()
        };
        self.execute_defrag(plan, observer)
    }

    /// Executes an epoch-valid compaction plan with staged dynamic
    /// relocation. Execute only plans predicted to lower the
    /// fragmentation index: ordered compaction always packs leftward,
    /// and on some layouts (the bursty trace showed 0.549 -> 0.549)
    /// that moves running functions without growing the largest free
    /// rectangle — pure reconfiguration traffic for nothing. Skipped
    /// cycles cause no device traffic and no checkpoint.
    fn execute_defrag(
        &mut self,
        plan: DefragPlan,
        mut observer: impl FnMut(&Device, &PlacedDesign, &StepRecord),
    ) -> Result<DefragReport, CoreError> {
        debug_assert_eq!(plan.epoch, self.epoch, "execute only validated plans");
        let before = plan.before;
        if !plan.is_worthwhile() {
            return Ok(DefragReport {
                moves: Vec::new(),
                relocations: Vec::new(),
                before,
                after: before,
            });
        }
        let mut relocations = Vec::new();
        for mv in &plan.moves {
            let reports = self.relocate_function_inner(mv.id, mv.to, &mut observer)?;
            relocations.extend(reports);
        }
        self.checkpoint();
        Ok(DefragReport {
            moves: plan.moves,
            relocations,
            before,
            after: self.fragmentation(),
        })
    }

    /// Loads a function into a `rows`×`cols` region, rearranging running
    /// functions if needed. Each executed move is performed with dynamic
    /// relocation; `observer` is invoked after every relocation step so a
    /// caller can keep simulations clocking.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtm_core::RunTimeManager;
    /// use rtm_fpga::part::Part;
    /// use rtm_netlist::{random::RandomCircuit, techmap::map_to_luts};
    ///
    /// let mut mgr = RunTimeManager::new(Part::Xcv200);
    /// let design = map_to_luts(&RandomCircuit::free_running(4, 10, 1).generate()).unwrap();
    /// let report = mgr.load(&design, 8, 8, |_, _, _| {}).unwrap();
    /// assert!(report.moves.is_empty(), "an empty device needs no rearrangement");
    /// assert_eq!(mgr.functions().count(), 1);
    /// mgr.unload(report.id).unwrap();
    /// assert_eq!(mgr.functions().count(), 0);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Place`] when even rearrangement cannot free a
    /// region, or implementation errors from placement/routing.
    pub fn load(
        &mut self,
        design: &MappedNetlist,
        rows: u16,
        cols: u16,
        observer: impl FnMut(&Device, &PlacedDesign, &StepRecord),
    ) -> Result<LoadReport, CoreError> {
        // Plan the rearrangement here; execution is shared with the
        // plan-reuse entry point.
        self.bump_stats(|s| s.make_room_calls += 1);
        let plan = make_room(&self.arena, rows, cols).ok_or(CoreError::Place(
            rtm_place::PlaceError::NoFit { rows, cols },
        ))?;
        self.load_executing(design, rows, cols, plan, observer)
    }

    /// Like [`RunTimeManager::load`], but executes a previously returned
    /// [`RoomPlan`] (from [`RunTimeManager::plan_room`] or
    /// [`RunTimeManager::preview_admission`]) instead of planning again.
    /// The plan's stamps are validated first: a stale plan — the layout
    /// mutated since it was computed — or a plan computed for a
    /// *different shape* than this request is never executed; it is
    /// counted in [`PlanStats::plans_invalidated`] and the load falls
    /// back to re-planning. A valid plan is counted in
    /// [`PlanStats::plans_reused`] and the load runs zero planning
    /// passes — collapsing the historical
    /// preview-then-plan-then-plan-again admission to one pass.
    ///
    /// # Errors
    ///
    /// As [`RunTimeManager::load`].
    pub fn load_with_plan(
        &mut self,
        design: &MappedNetlist,
        rows: u16,
        cols: u16,
        plan: &RoomPlan,
        observer: impl FnMut(&Device, &PlacedDesign, &StepRecord),
    ) -> Result<LoadReport, CoreError> {
        let moves = if plan.valid_for(self.epoch, rows, cols) {
            self.bump_stats(|s| s.plans_reused += 1);
            plan.moves.clone()
        } else {
            self.bump_stats(|s| {
                s.plans_invalidated += 1;
                s.make_room_calls += 1;
            });
            make_room(&self.arena, rows, cols).ok_or(CoreError::Place(
                rtm_place::PlaceError::NoFit { rows, cols },
            ))?
        };
        self.load_executing(design, rows, cols, moves, observer)
    }

    /// Executes an epoch-valid rearrangement plan, then places, routes
    /// and configures the incoming function — the single-shot
    /// composition of the two-phase pipeline: seat a reservation,
    /// implement it, and cancel the reservation right away if the
    /// implementation fails.
    fn load_executing(
        &mut self,
        design: &MappedNetlist,
        rows: u16,
        cols: u16,
        plan: Vec<Move>,
        mut observer: impl FnMut(&Device, &PlacedDesign, &StepRecord),
    ) -> Result<LoadReport, CoreError> {
        let ticket = self.seat_reservation(rows, cols, plan, &mut observer)?;
        let id = ticket.id;
        self.execute_reserved(design, ticket).inspect_err(|_| {
            // Single-shot callers get the historical contract: a failed
            // load leaves no reservation behind. (Two-phase callers keep
            // the reservation until they resolve the ticket, so both
            // admission modes observe the same arena at every step.)
            let _ = self.cancel_reservation(id);
        })
    }

    /// The decide half of the two-phase admission pipeline: validates
    /// `plan` exactly like [`RunTimeManager::load_with_plan`] (stale or
    /// wrong-shape plans are counted invalidated and re-planned),
    /// executes the rearrangement moves, and reserves an arena region
    /// for the incoming function — bumping the epoch and accounting the
    /// reservation in every metric — **without writing any cells, nets
    /// or frames**. The returned [`AdmissionTicket`] must be settled
    /// with [`RunTimeManager::execute_reserved`] or
    /// [`RunTimeManager::cancel_reservation`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Place`] when even rearrangement cannot free
    /// a region; relocation errors from executing the plan's moves.
    pub fn reserve_room(
        &mut self,
        rows: u16,
        cols: u16,
        plan: &RoomPlan,
        mut observer: impl FnMut(&Device, &PlacedDesign, &StepRecord),
    ) -> Result<AdmissionTicket, CoreError> {
        let moves = if plan.valid_for(self.epoch, rows, cols) {
            self.bump_stats(|s| s.plans_reused += 1);
            plan.moves.clone()
        } else {
            self.bump_stats(|s| {
                s.plans_invalidated += 1;
                s.make_room_calls += 1;
            });
            make_room(&self.arena, rows, cols).ok_or(CoreError::Place(
                rtm_place::PlaceError::NoFit { rows, cols },
            ))?
        };
        self.seat_reservation(rows, cols, moves, &mut observer)
    }

    /// Executes validated rearrangement moves and seats the reservation.
    fn seat_reservation(
        &mut self,
        rows: u16,
        cols: u16,
        plan: Vec<Move>,
        observer: &mut impl FnMut(&Device, &PlacedDesign, &StepRecord),
    ) -> Result<AdmissionTicket, CoreError> {
        let mut relocations = Vec::new();
        for mv in &plan {
            let reports = self.relocate_function_inner(mv.id, mv.to, observer)?;
            relocations.extend(reports);
        }
        if !plan.is_empty() {
            // The executed moves are durable state even if the
            // implementation fails later: checkpoint them so a failure
            // rollback keeps the configuration consistent with the
            // bookkeeping.
            self.checkpoint();
        }
        let id = self.next_id;
        let region = self.arena.allocate(id, rows, cols, self.strategy)?;
        self.bump_epoch();
        self.next_id += 1;
        self.reserved.insert(id, region);
        Ok(AdmissionTicket {
            id,
            epoch: self.epoch,
            region,
            moves: plan,
            relocations,
        })
    }

    /// The execute half of the two-phase admission pipeline: implements
    /// `design` inside the region a previously seated
    /// [`AdmissionTicket`] reserved — placement, net routing,
    /// configuration frames — and promotes the reservation to a loaded
    /// function. This is the heavy, shard-local part: it mutates only
    /// this manager's device, so a fleet engine can fan ticket
    /// executions across shards in parallel.
    ///
    /// # Errors
    ///
    /// Implementation errors (placement/routing congestion) restore the
    /// configuration checkpoint but **keep the arena reservation
    /// seated** — the caller resolves the failure and releases it with
    /// [`RunTimeManager::cancel_reservation`], so every observer of the
    /// arena sees the same layout whether execution was inline or
    /// deferred. Returns [`CoreError::Place`] for tickets this manager
    /// never seated (or already settled).
    pub fn execute_reserved(
        &mut self,
        design: &MappedNetlist,
        ticket: AdmissionTicket,
    ) -> Result<LoadReport, CoreError> {
        let id = ticket.id;
        let region = match self.reserved.get(&id) {
            Some(r) => *r,
            None => return Err(CoreError::Place(rtm_place::PlaceError::UnknownTask { id })),
        };
        // Other functions' wires may cross this region (relocation paths
        // are not region-bounded): reserve them so the router cannot
        // bridge nets. Pending reservations contribute nothing — they
        // own no nets yet.
        let reserved = self.foreign_nodes(None);
        let placed = match implement_reserved(&mut self.dev, design, region, &reserved) {
            Ok(placed) => placed,
            Err(e) => {
                // A failed implementation leaves partly configured
                // cells and partly routed nets behind: restore the last
                // configuration checkpoint — the paper's recovery copy
                // doing exactly its job. The arena reservation stays
                // seated until the caller cancels it.
                self.recover()?;
                return Err(e.into());
            }
        };
        self.reserved.remove(&id);
        self.functions.insert(
            id,
            LoadedFunction {
                design: design.clone(),
                region,
                placed,
            },
        );
        self.checkpoint();
        Ok(LoadReport {
            id,
            region,
            moves: ticket.moves,
            relocations: ticket.relocations,
        })
    }

    /// Releases a seated reservation without implementing it — the
    /// failure/abandon path of the two-phase pipeline. The region
    /// returns to the free pool and the epoch advances (the arena
    /// changed shape).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Place`] for ids this manager never reserved
    /// (or already settled).
    pub fn cancel_reservation(&mut self, id: FunctionId) -> Result<(), CoreError> {
        if self.reserved.remove(&id).is_none() {
            return Err(CoreError::Place(rtm_place::PlaceError::UnknownTask { id }));
        }
        self.arena.release(id)?;
        self.bump_epoch();
        Ok(())
    }

    /// Unloads a function: releases its region, routing and cells.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Place`] for unknown ids.
    pub fn unload(&mut self, id: FunctionId) -> Result<(), CoreError> {
        let f = self
            .functions
            .remove(&id)
            .ok_or(CoreError::Place(rtm_place::PlaceError::UnknownTask { id }))?;
        self.arena.release(id)?;
        self.bump_epoch();
        let mut placed = f.placed;
        let nets: Vec<_> = placed.netdb.nets().map(|(n, _)| n).collect();
        for n in nets {
            placed.netdb.remove_net(&mut self.dev, n);
        }
        let all_locs: Vec<_> = placed
            .placement
            .cell_locs
            .iter()
            .chain(placed.placement.feed_locs.iter())
            .chain(placed.placement.tap_locs.iter())
            .copied()
            .collect();
        for loc in all_locs {
            self.dev
                .set_cell(loc.0, loc.1, rtm_fpga::cell::LogicCell::default())?;
            self.dev.set_cell_state(loc.0, loc.1, false)?;
        }
        self.checkpoint();
        Ok(())
    }

    /// Moves a whole running function to a new region (same shape) with
    /// staged, cell-by-cell dynamic relocation.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtm_core::RunTimeManager;
    /// use rtm_fpga::part::Part;
    /// use rtm_fpga::geom::{ClbCoord, Rect};
    /// use rtm_netlist::{random::RandomCircuit, techmap::map_to_luts};
    ///
    /// let mut mgr = RunTimeManager::new(Part::Xcv200);
    /// let design = map_to_luts(&RandomCircuit::free_running(4, 10, 2).generate()).unwrap();
    /// let loaded = mgr.load(&design, 8, 8, |_, _, _| {}).unwrap();
    /// let to = Rect::new(ClbCoord::new(18, 20), 8, 8);
    /// let reports = mgr.relocate_function(loaded.id, to, |_, _, _| {}).unwrap();
    /// assert!(!reports.is_empty(), "every placed cell was relocated live");
    /// assert_eq!(mgr.function(loaded.id).unwrap().region, to);
    /// ```
    ///
    /// # Errors
    ///
    /// Area errors if the target overlaps another function; engine errors
    /// if any cell move fails.
    pub fn relocate_function(
        &mut self,
        id: FunctionId,
        to: Rect,
        mut observer: impl FnMut(&Device, &PlacedDesign, &StepRecord),
    ) -> Result<Vec<RelocationReport>, CoreError> {
        let reports = self.relocate_function_inner(id, to, &mut observer)?;
        self.checkpoint();
        Ok(reports)
    }

    fn relocate_function_inner(
        &mut self,
        id: FunctionId,
        to: Rect,
        observer: &mut impl FnMut(&Device, &PlacedDesign, &StepRecord),
    ) -> Result<Vec<RelocationReport>, CoreError> {
        let from = self
            .arena
            .task_rect(id)
            .ok_or(CoreError::Place(rtm_place::PlaceError::UnknownTask { id }))?;
        // Area bookkeeping first: rejects overlap with other functions.
        self.arena.relocate(id, to)?;
        self.bump_epoch();

        // All routing of this move must respect every other function's
        // wires: reserve their nodes in the moving function's database.
        let reserved = self.foreign_nodes(Some(id));
        let f = self
            .functions
            .get_mut(&id)
            .ok_or_else(|| CoreError::DesignMismatch {
                detail: format!("function {id} tracked by the arena but not the table"),
            })?;
        f.placed.netdb.reserve(reserved);
        let dr = to.origin.row as i32 - from.origin.row as i32;
        let dc = to.origin.col as i32 - from.origin.col as i32;

        // Collect every slot to move (cells + feeds), ordered so that
        // slots furthest along the movement direction go first — their
        // destinations are never occupied by a not-yet-moved sibling
        // (memmove ordering).
        let mut slots: Vec<CellLoc> = Vec::new();
        slots.extend(f.placed.placement.cell_locs.iter().copied());
        slots.extend(f.placed.placement.feed_locs.iter().copied());
        slots.extend(f.placed.placement.tap_locs.iter().copied());
        slots.sort_by_key(|loc| {
            -(loc.0.col as i64 * dc.signum() as i64 + loc.0.row as i64 * dr.signum() as i64)
        });

        let mut reports = Vec::new();
        for src in slots {
            let dst_tile = src
                .0
                .offset(dr, dc)
                .ok_or_else(|| CoreError::DesignMismatch {
                    detail: format!("translated tile for {} out of bounds", src.0),
                })?;
            let dst = (dst_tile, src.1);
            if dst == src {
                continue;
            }
            let opts = RelocationOptions::default();
            let report = relocate_cell(
                &mut self.dev,
                &mut f.placed,
                src,
                dst,
                &opts,
                &mut *observer,
            )
            .inspect_err(|_| {
                // Leave no dangling reservations behind on failure.
            });
            match report {
                Ok(report) => reports.push(report),
                Err(e) => {
                    f.placed.netdb.clear_reservations();
                    return Err(e);
                }
            }
        }
        f.placed.netdb.clear_reservations();
        f.region = to;
        Ok(reports)
    }

    /// Every routing node owned by functions other than `except` — the
    /// set that must be reserved before routing on their behalf.
    fn foreign_nodes(&self, except: Option<FunctionId>) -> Vec<rtm_fpga::routing::RouteNode> {
        let mut nodes = Vec::new();
        for (fid, f) in &self.functions {
            if Some(*fid) == except {
                continue;
            }
            nodes.extend(f.placed.netdb.all_nodes());
        }
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// Relocates a single cell of a loaded function — the tool's
    /// coordinate-pair input mode (§4: "providing the co-ordinates —
    /// source and destination — of the CLB to be relocated").
    ///
    /// # Errors
    ///
    /// Unknown ids, busy destinations and engine errors.
    pub fn relocate_cell_of(
        &mut self,
        id: FunctionId,
        src: CellLoc,
        dst: CellLoc,
        mut observer: impl FnMut(&Device, &PlacedDesign, &StepRecord),
    ) -> Result<RelocationReport, CoreError> {
        if !self
            .arena
            .task_rect(id)
            .map(|r| r.contains(dst.0))
            .unwrap_or(false)
        {
            // The destination must stay within the function's region so
            // the area bookkeeping remains truthful.
            return Err(CoreError::DestinationBusy {
                tile: dst.0,
                cell: dst.1,
            });
        }
        let reserved = self.foreign_nodes(Some(id));
        let f = self
            .functions
            .get_mut(&id)
            .ok_or(CoreError::Place(rtm_place::PlaceError::UnknownTask { id }))?;
        f.placed.netdb.reserve(reserved);
        let result = relocate_cell(
            &mut self.dev,
            &mut f.placed,
            src,
            dst,
            &RelocationOptions::default(),
            &mut observer,
        );
        f.placed.netdb.clear_reservations();
        let report = result?;
        self.checkpoint();
        Ok(report)
    }

    /// Takes a fresh recovery snapshot of the configuration ("the program
    /// always keeps a complete copy of the current configuration",
    /// paper §4).
    pub fn checkpoint(&mut self) {
        self.recovery = self.dev.config().snapshot();
    }

    /// Restores the last checkpoint into the device (system recovery).
    ///
    /// # Errors
    ///
    /// Propagates frame-write errors (cannot occur for a matching part).
    pub fn recover(&mut self) -> Result<usize, CoreError> {
        let frames = self.dev.config().diff_frames(&self.recovery);
        let n = frames.len();
        for addr in frames {
            let frame = self.recovery.read_frame(addr)?;
            self.dev.write_frame(addr, frame)?;
        }
        Ok(n)
    }

    /// One-line status for the CLI.
    pub fn status(&self) -> ManagerStatus {
        ManagerStatus {
            part: self.dev.part(),
            functions: self.functions.len(),
            frag: self.fragmentation(),
        }
    }
}

/// Status summary of the manager.
#[derive(Debug, Clone, Copy)]
pub struct ManagerStatus {
    /// The device part.
    pub part: Part,
    /// Number of resident functions.
    pub functions: usize,
    /// Fragmentation metrics.
    pub frag: FragMetrics,
}

impl fmt::Display for ManagerStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | {} functions | {}",
            self.part, self.functions, self.frag
        )
    }
}

/// Convenience: the translated rectangle of a move (used by callers
/// replaying plans).
pub fn translate(rect: Rect, to_origin: ClbCoord) -> Rect {
    Rect::new(to_origin, rect.rows, rect.cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_netlist::random::RandomCircuit;
    use rtm_netlist::techmap::map_to_luts;

    fn small_design(seed: u64) -> MappedNetlist {
        map_to_luts(&RandomCircuit::free_running(4, 10, seed).generate()).unwrap()
    }

    #[test]
    fn load_and_unload_roundtrip() {
        let mut mgr = RunTimeManager::new(Part::Xcv200);
        let d = small_design(1);
        let r = mgr.load(&d, 8, 8, |_, _, _| {}).unwrap();
        assert!(r.moves.is_empty());
        assert_eq!(mgr.functions().count(), 1);
        assert!(mgr.fragmentation().utilisation() > 0.0);
        mgr.unload(r.id).unwrap();
        assert_eq!(mgr.functions().count(), 0);
        // Device fully cleaned: everything unconfigured again.
        assert_eq!(mgr.device().pips().count(), 0);
        let used = mgr.device().used_in(mgr.device().bounds());
        assert!(used.is_empty(), "leftover cells: {used:?}");
    }

    #[test]
    fn failed_load_leaves_no_orphan_state() {
        let mut mgr = RunTimeManager::new(Part::Xcv50);
        // Far more LUTs than a 2x2 region can hold: placement fails
        // after the region was reserved.
        let big = map_to_luts(&RandomCircuit::free_running(4, 30, 77).generate()).unwrap();
        assert!(mgr.load(&big, 2, 2, |_, _, _| {}).is_err());
        // The failure must not leak the area reservation (an orphaned
        // arena task would poison every later compaction plan and crash
        // `defragment`) nor any partial configuration.
        assert_eq!(mgr.fragmentation().utilisation(), 0.0);
        assert!(mgr.device().used_in(mgr.device().bounds()).is_empty());
        // The manager keeps working normally.
        mgr.defragment(|_, _, _| {}).unwrap();
        let d = small_design(1);
        let r = mgr.load(&d, 8, 8, |_, _, _| {}).unwrap();
        mgr.unload(r.id).unwrap();
        assert_eq!(mgr.functions().count(), 0);
    }

    #[test]
    fn unknown_function_errors() {
        let mut mgr = RunTimeManager::new(Part::Xcv200);
        assert!(mgr.unload(42).is_err());
        assert!(mgr
            .relocate_function(42, Rect::new(ClbCoord::new(0, 0), 2, 2), |_, _, _| {})
            .is_err());
    }

    #[test]
    fn relocate_function_translates_every_cell() {
        let mut mgr = RunTimeManager::new(Part::Xcv200);
        let d = small_design(2);
        let r = mgr.load(&d, 8, 8, |_, _, _| {}).unwrap();
        let from = r.region;
        let to = Rect::new(ClbCoord::new(18, 20), from.rows, from.cols);
        let reports = mgr.relocate_function(r.id, to, |_, _, _| {}).unwrap();
        assert!(!reports.is_empty());
        let f = mgr.function(r.id).unwrap();
        assert_eq!(f.region, to);
        for loc in f
            .placed
            .placement
            .cell_locs
            .iter()
            .chain(f.placed.placement.feed_locs.iter())
        {
            assert!(to.contains(loc.0), "{} escaped the target region", loc.0);
        }
        // The old region is fully clean.
        assert!(mgr.device().used_in(from).is_empty());
    }

    #[test]
    fn overlapping_function_move_with_sliding_overlap() {
        let mut mgr = RunTimeManager::new(Part::Xcv200);
        let d = small_design(3);
        let r = mgr.load(&d, 8, 8, |_, _, _| {}).unwrap();
        let from = r.region;
        // Slide by 3 columns (direction chosen to stay on the device):
        // overlapping source/destination.
        let new_col = if from.origin.col >= 3 {
            from.origin.col - 3
        } else {
            from.origin.col + 3
        };
        let to = Rect::new(
            ClbCoord::new(from.origin.row, new_col),
            from.rows,
            from.cols,
        );
        mgr.relocate_function(r.id, to, |_, _, _| {}).unwrap();
        assert_eq!(mgr.function(r.id).unwrap().region, to);
    }

    #[test]
    fn relocate_cell_of_moves_one_cell_within_region() {
        let mut mgr = RunTimeManager::new(Part::Xcv200);
        let d = small_design(9);
        let r = mgr.load(&d, 10, 10, |_, _, _| {}).unwrap();
        let f = mgr.function(r.id).unwrap();
        let src = f.placed.placement.cell_locs[0];
        // A free slot inside the function's own region.
        let dst =
            crate::relocation::find_aux_sites(mgr.device(), &f.placed.netdb, src.0, 1, &[src])
                .unwrap()[0];
        assert!(r.region.contains(dst.0), "aux search stays near src");
        let report = mgr.relocate_cell_of(r.id, src, dst, |_, _, _| {}).unwrap();
        assert_eq!(report.src, src);
        assert_eq!(report.dst, dst);
        assert_eq!(
            mgr.function(r.id).unwrap().placed.placement.cell_locs[0],
            dst
        );

        // A destination outside the region is refused.
        let outside_tile = mgr
            .device()
            .bounds()
            .iter()
            .find(|t| !r.region.contains(*t))
            .expect("device larger than the region");
        assert!(matches!(
            mgr.relocate_cell_of(r.id, dst, (outside_tile, 0), |_, _, _| {}),
            Err(CoreError::DestinationBusy { .. })
        ));
    }

    #[test]
    fn recovery_restores_configuration() {
        let mut mgr = RunTimeManager::new(Part::Xcv200);
        let d = small_design(4);
        mgr.load(&d, 8, 8, |_, _, _| {}).unwrap();
        let before = mgr.device().config().snapshot();
        // Vandalise the device outside the manager's knowledge.
        let mut clb = *mgr.device().clb(ClbCoord::new(0, 0)).unwrap();
        clb.cells[0].lut = rtm_fpga::lut::Lut::constant(true);
        mgr.dev.set_clb(ClbCoord::new(0, 0), clb).unwrap();
        assert!(!mgr.device().config().diff_frames(&before).is_empty());
        let restored = mgr.recover().unwrap();
        assert!(restored > 0);
        assert!(mgr.device().config().diff_frames(&before).is_empty());
    }

    #[test]
    fn defragment_consolidates_free_space() {
        let mut mgr = RunTimeManager::new(Part::Xcv50); // 16x24
        let d1 = small_design(12);
        let d2 = small_design(13);
        let a = mgr.load(&d1, 16, 6, |_, _, _| {}).unwrap();
        let b = mgr.load(&d2, 16, 6, |_, _, _| {}).unwrap();
        // Strand the functions so the free space splits into two gaps.
        mgr.relocate_function(a.id, Rect::new(ClbCoord::new(0, 18), 16, 6), |_, _, _| {})
            .unwrap();
        mgr.relocate_function(b.id, Rect::new(ClbCoord::new(0, 6), 16, 6), |_, _, _| {})
            .unwrap();
        let before = mgr.fragmentation();
        assert!(before.exceeds(0.4), "setup must fragment: {before}");
        let planned = mgr.plan_defrag();
        assert!(planned.is_worthwhile());
        assert!(planned.predicted_gain() > 0.0);
        let report = mgr.defragment(|_, _, _| {}).unwrap();
        assert_eq!(report.moves, planned.moves(), "plan matches execution");
        assert!(!report.moves.is_empty());
        assert!(report.frames_total() > 0);
        assert!(
            report.improvement() > 0.0,
            "compaction must reduce fragmentation: {report}"
        );
        assert_eq!(report.after.fragmentation(), 0.0, "one free rectangle");
        // Both functions still resident, regions disjoint.
        assert_eq!(mgr.functions().count(), 2);
    }

    #[test]
    fn defragment_skips_cycles_with_no_predicted_improvement() {
        let mut mgr = RunTimeManager::new(Part::Xcv50); // 16x24
        let a = mgr.load(&small_design(20), 16, 4, |_, _, _| {}).unwrap();
        let b = mgr.load(&small_design(21), 16, 8, |_, _, _| {}).unwrap();
        mgr.relocate_function(a.id, Rect::new(ClbCoord::new(0, 0), 16, 4), |_, _, _| {})
            .unwrap();
        mgr.relocate_function(b.id, Rect::new(ClbCoord::new(0, 16), 16, 8), |_, _, _| {})
            .unwrap();
        // Free space (cols 4-15) is already one rectangle, yet ordered
        // compaction still wants to slide b leftward: 128 CLBs of
        // relocation traffic with zero predicted improvement.
        let before = mgr.fragmentation();
        assert_eq!(before.fragmentation(), 0.0);
        assert!(
            !mgr.plan_defrag().moves().is_empty(),
            "left-pack plans a move"
        );
        assert_eq!(mgr.predicted_defrag_gain(), 0.0);

        let report = mgr.defragment(|_, _, _| {}).unwrap();
        assert!(report.moves.is_empty(), "useless cycle must be skipped");
        assert!(report.relocations.is_empty());
        assert_eq!(report.before, report.after);
        // Nothing moved on the device.
        assert_eq!(mgr.function(b.id).unwrap().region.origin.col, 16);
    }

    #[test]
    fn preview_admission_predicts_without_mutating() {
        let mut mgr = RunTimeManager::new(Part::Xcv50);
        let r = mgr.load(&small_design(14), 16, 6, |_, _, _| {}).unwrap();
        mgr.relocate_function(r.id, Rect::new(ClbCoord::new(0, 9), 16, 6), |_, _, _| {})
            .unwrap();
        // A 16x12 request needs the stranded function out of the middle.
        let p = mgr.preview_admission(16, 12).expect("satisfiable");
        assert!(!p.moves().is_empty());
        assert_eq!(p.plan.epoch(), mgr.epoch(), "plan stamped at current epoch");
        assert!(p.cells_moved() > 0);
        assert_eq!((p.region.rows, p.region.cols), (16, 12));
        assert!(
            p.after.utilisation() > mgr.fragmentation().utilisation(),
            "prediction includes the incoming function"
        );
        // Nothing actually happened.
        assert_eq!(mgr.function(r.id).unwrap().region.origin.col, 9);
        assert_eq!(mgr.functions().count(), 1);
        // A fitting request previews with an empty plan; an impossible
        // one with None.
        assert!(mgr.preview_admission(4, 4).unwrap().moves().is_empty());
        assert!(mgr.preview_admission(16, 24).is_none());
    }

    #[test]
    fn plan_room_previews_load_rearrangement() {
        let mut mgr = RunTimeManager::new(Part::Xcv50);
        let d = small_design(14);
        let r = mgr.load(&d, 16, 6, |_, _, _| {}).unwrap();
        mgr.relocate_function(r.id, Rect::new(ClbCoord::new(0, 9), 16, 6), |_, _, _| {})
            .unwrap();
        // A 16x12 request needs the stranded function out of the middle.
        let plan = mgr.plan_room(16, 12).expect("satisfiable");
        assert!(!plan.is_empty());
        // Planning must not have changed any state.
        assert_eq!(mgr.function(r.id).unwrap().region.origin.col, 9);
        // An impossible request is reported as such.
        assert!(mgr.plan_room(16, 24).is_none());
    }

    #[test]
    fn load_rearranges_when_fragmented() {
        let mut mgr = RunTimeManager::new(Part::Xcv50); // 16x24
                                                        // Two 16x6 functions arranged to leave two 6-column gaps.
        let d1 = small_design(5);
        let a = mgr.load(&d1, 16, 6, |_, _, _| {}).unwrap();
        let d2 = small_design(6);
        let b = mgr.load(&d2, 16, 6, |_, _, _| {}).unwrap();
        mgr.relocate_function(a.id, Rect::new(ClbCoord::new(0, 18), 16, 6), |_, _, _| {})
            .unwrap();
        mgr.relocate_function(b.id, Rect::new(ClbCoord::new(0, 6), 16, 6), |_, _, _| {})
            .unwrap();
        // Free space: columns 0..6 and 12..18 — fragmented. A 16x10
        // request cannot fit in either gap, but fits after rearrangement.
        assert!(mgr.fragmentation().largest_rect < 160);
        let d3 = small_design(7);
        let r = mgr.load(&d3, 16, 10, |_, _, _| {}).unwrap();
        assert!(!r.moves.is_empty(), "rearrangement must have happened");
        assert_eq!(mgr.functions().count(), 3);
    }

    /// A comb-fragmented XCV50 whose 16x12 request needs rearrangement.
    fn fragmented_mgr() -> (RunTimeManager, FunctionId) {
        let mut mgr = RunTimeManager::new(Part::Xcv50);
        let r = mgr.load(&small_design(14), 16, 6, |_, _, _| {}).unwrap();
        mgr.relocate_function(r.id, Rect::new(ClbCoord::new(0, 9), 16, 6), |_, _, _| {})
            .unwrap();
        (mgr, r.id)
    }

    #[test]
    fn epoch_moves_with_every_arena_mutation() {
        let mut mgr = RunTimeManager::new(Part::Xcv200);
        let e0 = mgr.epoch();
        let r = mgr.load(&small_design(1), 8, 8, |_, _, _| {}).unwrap();
        let e1 = mgr.epoch();
        assert!(e1 > e0, "load allocates");
        mgr.relocate_function(r.id, Rect::new(ClbCoord::new(18, 20), 8, 8), |_, _, _| {})
            .unwrap();
        let e2 = mgr.epoch();
        assert!(e2 > e1, "relocation moves the arena task");
        mgr.unload(r.id).unwrap();
        assert!(mgr.epoch() > e2, "unload releases");
        // Pure planning never moves the epoch.
        let e3 = mgr.epoch();
        mgr.plan_room(4, 4);
        mgr.plan_defrag();
        mgr.preview_admission(4, 4);
        mgr.summary();
        assert_eq!(mgr.epoch(), e3);
    }

    #[test]
    fn load_with_plan_reuses_the_preview_without_replanning() {
        let (mut mgr, _) = fragmented_mgr();
        let base = mgr.plan_stats();
        let p = mgr.preview_admission(16, 12).expect("satisfiable");
        let d = small_design(15);
        let lr = mgr
            .load_with_plan(&d, 16, 12, &p.plan, |_, _, _| {})
            .unwrap();
        let delta = mgr.plan_stats().delta_since(base);
        assert_eq!(delta.make_room_calls, 1, "only the preview planned");
        assert_eq!(delta.previews, 1);
        assert_eq!(delta.plans_reused, 1);
        assert_eq!(delta.plans_invalidated, 0);
        assert_eq!(lr.moves, p.plan.moves(), "the preview's moves executed");
        assert_eq!(lr.region, p.region, "same allocator, same region");
        assert_eq!(
            mgr.fragmentation(),
            p.after,
            "predicted metrics match the executed outcome exactly"
        );
    }

    #[test]
    fn stale_plan_is_replanned_not_executed() {
        let (mut mgr, resident) = fragmented_mgr();
        let p = mgr.preview_admission(16, 12).expect("satisfiable");
        assert!(!p.moves().is_empty());
        // An interleaved unload bumps the epoch: the previewed plan now
        // describes a layout that no longer exists (its move would
        // shuffle a function that is gone).
        mgr.unload(resident).unwrap();
        assert_ne!(p.plan.epoch(), mgr.epoch());
        let base = mgr.plan_stats();
        let d = small_design(16);
        let lr = mgr
            .load_with_plan(&d, 16, 12, &p.plan, |_, _, _| {})
            .unwrap();
        let delta = mgr.plan_stats().delta_since(base);
        assert_eq!(delta.plans_invalidated, 1, "stale stamp detected");
        assert_eq!(delta.plans_reused, 0);
        assert_eq!(delta.make_room_calls, 1, "fell back to re-planning");
        // The re-planned load needed no moves at all: the device is
        // empty, so executing the stale plan would have been wrong twice.
        assert!(lr.moves.is_empty());
        assert_eq!(mgr.functions().count(), 1);
    }

    #[test]
    fn revalidate_room_plan_passes_fresh_and_replaces_stale() {
        let (mut mgr, resident) = fragmented_mgr();
        let fresh = mgr.plan_room(16, 12).expect("satisfiable");
        let same = mgr
            .revalidate_room_plan(16, 12, Some(fresh.clone()))
            .unwrap();
        assert_eq!(same, fresh, "valid plans pass through untouched");
        mgr.unload(resident).unwrap();
        let base = mgr.plan_stats();
        let replanned = mgr.revalidate_room_plan(16, 12, Some(fresh)).unwrap();
        assert_eq!(replanned.epoch(), mgr.epoch());
        assert!(replanned.is_empty(), "empty device needs no moves");
        let delta = mgr.plan_stats().delta_since(base);
        assert_eq!(delta.plans_invalidated, 1);
        assert_eq!(delta.make_room_calls, 1);
    }

    #[test]
    fn defragment_with_plan_reuses_and_detects_staleness() {
        let mut mgr = RunTimeManager::new(Part::Xcv50);
        let a = mgr.load(&small_design(12), 16, 6, |_, _, _| {}).unwrap();
        let b = mgr.load(&small_design(13), 16, 6, |_, _, _| {}).unwrap();
        mgr.relocate_function(a.id, Rect::new(ClbCoord::new(0, 18), 16, 6), |_, _, _| {})
            .unwrap();
        mgr.relocate_function(b.id, Rect::new(ClbCoord::new(0, 6), 16, 6), |_, _, _| {})
            .unwrap();
        let plan = mgr.plan_defrag();
        assert!(plan.is_worthwhile());
        let base = mgr.plan_stats();
        let report = mgr.defragment_with_plan(&plan, |_, _, _| {}).unwrap();
        let delta = mgr.plan_stats().delta_since(base);
        assert_eq!(report.moves, plan.moves());
        assert_eq!(delta.plans_reused, 1);
        assert_eq!(delta.compaction_plans, 0, "no re-planning");
        assert_eq!(report.after.fragmentation(), 0.0);

        // The executed cycle bumped the epoch: replaying the same plan
        // is detected as stale and re-planned (to a no-op here).
        let base = mgr.plan_stats();
        let again = mgr.defragment_with_plan(&plan, |_, _, _| {}).unwrap();
        let delta = mgr.plan_stats().delta_since(base);
        assert_eq!(delta.plans_invalidated, 1);
        assert_eq!(delta.compaction_plans, 1);
        assert!(again.moves.is_empty(), "compact layout: nothing to do");
    }

    #[test]
    fn summary_is_cached_per_epoch() {
        let mut mgr = RunTimeManager::new(Part::Xcv50);
        let base = mgr.plan_stats();
        let s1 = mgr.summary();
        let s2 = mgr.summary();
        assert_eq!(s1, s2);
        let delta = mgr.plan_stats().delta_since(base);
        assert_eq!(delta.summary_misses, 1);
        assert_eq!(delta.summary_hits, 1);
        assert_eq!(
            delta.compaction_plans, 0,
            "the routing summary never pays for a compaction plan"
        );

        let r = mgr.load(&small_design(3), 8, 8, |_, _, _| {}).unwrap();
        let s3 = mgr.summary();
        assert_ne!(s3.epoch, s1.epoch, "mutation invalidated the cache");
        assert!(s3.frag.utilisation() > 0.0);
        mgr.unload(r.id).unwrap();
        assert_eq!(mgr.summary().frag.utilisation(), 0.0);
    }

    #[test]
    fn defrag_gain_is_lazy_and_cached_per_epoch() {
        let mut mgr = RunTimeManager::new(Part::Xcv50);
        let r = mgr.load(&small_design(5), 8, 8, |_, _, _| {}).unwrap();
        let base = mgr.plan_stats();
        let g1 = mgr.predicted_defrag_gain();
        let g2 = mgr.predicted_defrag_gain();
        assert_eq!(g1, g2);
        let delta = mgr.plan_stats().delta_since(base);
        assert_eq!(delta.compaction_plans, 1, "first query plans, second hits");
        // A mutation invalidates the cached gain.
        mgr.unload(r.id).unwrap();
        let base = mgr.plan_stats();
        assert_eq!(mgr.predicted_defrag_gain(), 0.0, "empty device");
        assert_eq!(mgr.plan_stats().delta_since(base).compaction_plans, 1);
    }

    #[test]
    fn two_phase_reserve_execute_matches_single_shot_load() {
        let (mut mgr, _) = fragmented_mgr();
        let plan = mgr.plan_room(16, 12).expect("satisfiable");
        let base = mgr.plan_stats();
        let ticket = mgr.reserve_room(16, 12, &plan, |_, _, _| {}).unwrap();
        assert_eq!(
            mgr.plan_stats().delta_since(base).plans_reused,
            1,
            "reserve validates like load_with_plan"
        );
        assert!(!ticket.moves().is_empty(), "the comb needed rearrangement");
        assert_eq!(ticket.epoch(), mgr.epoch(), "stamped after the bump");
        // The reservation is visible to every arena observer...
        assert!(mgr.fragmentation().utilisation() > 0.3);
        assert!(mgr.bookkeeping_consistent());
        // ...but nothing was implemented yet: no nets, no new function.
        assert_eq!(mgr.functions().count(), 1);
        let d = small_design(40);
        let lr = mgr.execute_reserved(&d, ticket.clone()).unwrap();
        assert_eq!(lr.id, ticket.id());
        assert_eq!(lr.region, ticket.region());
        assert_eq!(mgr.functions().count(), 2);
        assert!(mgr.bookkeeping_consistent());
        // Settling the same ticket twice is refused.
        assert!(mgr.execute_reserved(&d, ticket).is_err());
    }

    #[test]
    fn failed_execute_keeps_the_reservation_until_cancelled() {
        let mut mgr = RunTimeManager::new(Part::Xcv50);
        let plan = mgr.plan_room(2, 2).expect("fits");
        let ticket = mgr.reserve_room(2, 2, &plan, |_, _, _| {}).unwrap();
        let id = ticket.id();
        // Far more LUTs than a 2x2 region can hold: implementation fails.
        let big = map_to_luts(&RandomCircuit::free_running(4, 30, 77).generate()).unwrap();
        assert!(mgr.execute_reserved(&big, ticket).is_err());
        // The device is clean, but the arena reservation is still seated
        // — deferred and inline executors must observe the same layout
        // until the caller resolves the failure.
        assert!(mgr.device().used_in(mgr.device().bounds()).is_empty());
        assert!(mgr.fragmentation().utilisation() > 0.0);
        assert!(mgr.bookkeeping_consistent());
        let epoch = mgr.epoch();
        mgr.cancel_reservation(id).unwrap();
        assert!(mgr.epoch() > epoch, "release is an arena mutation");
        assert_eq!(mgr.fragmentation().utilisation(), 0.0);
        assert!(mgr.bookkeeping_consistent());
        assert!(mgr.cancel_reservation(id).is_err(), "already settled");
        // The manager keeps working normally.
        let r = mgr.load(&small_design(1), 8, 8, |_, _, _| {}).unwrap();
        mgr.unload(r.id).unwrap();
    }

    #[test]
    fn wrong_shape_plan_is_invalidated_not_executed() {
        let (mut mgr, _) = fragmented_mgr();
        // Planned for 16x12; handed back for a 4x4 request at the SAME
        // epoch. Executing it would relocate a function for nothing
        // (and its moves only make room for the 16x12 shape).
        let p = mgr.preview_admission(16, 12).expect("satisfiable");
        assert!(!p.moves().is_empty());
        assert_eq!(p.plan.shape(), (16, 12));
        let base = mgr.plan_stats();
        let d = small_design(31);
        let lr = mgr.load_with_plan(&d, 4, 4, &p.plan, |_, _, _| {}).unwrap();
        let delta = mgr.plan_stats().delta_since(base);
        assert_eq!(delta.plans_invalidated, 1, "shape mismatch detected");
        assert_eq!(delta.plans_reused, 0);
        assert!(lr.moves.is_empty(), "a 4x4 fits without any rearrangement");
        // revalidate_room_plan applies the same shape check.
        let p2 = mgr.plan_room(16, 12).expect("still satisfiable");
        let revalidated = mgr.revalidate_room_plan(4, 4, Some(p2)).unwrap();
        assert_eq!(revalidated.shape(), (4, 4));
    }
}
