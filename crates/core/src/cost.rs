//! Reconfiguration cost: frames → interface bits → wall-clock time.
//!
//! Reproduces the paper's T1 number: "the average relocation time of each
//! CLB implementing synchronous gated-clock circuits is about 22.6 ms,
//! when the Boundary Scan infrastructure is used … at a test clock
//! frequency of 20 MHz" (§2). Each procedure step is one partial
//! configuration file; the cost of a step depends on the **write
//! granularity**:
//!
//! * [`WriteGranularity::Column`] — the behaviour of the paper's
//!   JBits-era tool: every configuration column touched by the step is
//!   rewritten in full (48 frames + the pipeline pad frame). This is the
//!   default and what lands at the paper's figure.
//! * [`WriteGranularity::Frame`] — a frame-exact tool that writes only
//!   changed frames (the ablation showing how much a modern flow saves).

use crate::relocation::RelocationReport;
use rtm_fpga::config::{BlockType, FrameAddress};
use rtm_fpga::part::Part;
use rtm_jtag::timing::ConfigInterface;
use std::fmt;

/// How a tool groups frame writes into configuration files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WriteGranularity {
    /// Rewrite whole columns containing any changed frame (the paper's
    /// tool).
    #[default]
    Column,
    /// Write exactly the changed frames, grouped into bursts of
    /// consecutive addresses.
    Frame,
}

impl fmt::Display for WriteGranularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WriteGranularity::Column => "column",
            WriteGranularity::Frame => "frame",
        };
        f.write_str(s)
    }
}

/// Stream-overhead constants (words), matching the structure emitted by
/// `rtm_bitstream::partial::PartialBitstream`: dummy+sync, RCRC, FLR,
/// LFRM, CRC.
const STREAM_BASE_WORDS: u64 = 10;
/// Per-burst words: FAR write (2), WCFG write (2), FDRI header (1).
const BURST_HEADER_WORDS: u64 = 5;

/// The cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Write granularity.
    pub granularity: WriteGranularity,
    /// Configuration interface.
    pub interface: ConfigInterface,
}

impl CostModel {
    /// The paper's configuration: column-granular writes over Boundary
    /// Scan at 20 MHz.
    pub fn paper_default() -> Self {
        CostModel {
            granularity: WriteGranularity::Column,
            interface: ConfigInterface::paper_default(),
        }
    }

    /// A frame-granular model over the same interface.
    pub fn frame_granular(interface: ConfigInterface) -> Self {
        CostModel {
            granularity: WriteGranularity::Frame,
            interface,
        }
    }

    /// Words of one partial configuration file that writes `frames`.
    pub fn stream_words(&self, part: Part, frames: &[FrameAddress]) -> u64 {
        if frames.is_empty() {
            return 0;
        }
        let fw = part.frame_words() as u64;
        match self.granularity {
            WriteGranularity::Column => {
                let mut cols: Vec<(BlockType, u16)> =
                    frames.iter().map(|f| (f.block, f.major)).collect();
                cols.sort();
                cols.dedup();
                let mut words = STREAM_BASE_WORDS;
                for (block, _) in cols {
                    let minors = match block {
                        BlockType::Clb => rtm_fpga::part::FRAMES_PER_CLB_COLUMN,
                        BlockType::Iob => rtm_fpga::part::FRAMES_PER_IOB_COLUMN,
                        BlockType::Clock => rtm_fpga::part::FRAMES_CLOCK_COLUMN,
                    } as u64;
                    // One burst per column: headers + minors + pad frame.
                    words += BURST_HEADER_WORDS + (minors + 1) * fw;
                }
                words
            }
            WriteGranularity::Frame => {
                let mut sorted = frames.to_vec();
                sorted.sort();
                sorted.dedup();
                // Count bursts of consecutive frame addresses.
                let mut bursts: u64 = 0;
                let mut total: u64 = 0;
                let mut prev: Option<FrameAddress> = None;
                for f in &sorted {
                    let consecutive = prev
                        .and_then(|p| rtm_bitstream::port::far_increment(part, p))
                        .map(|n| n == *f)
                        .unwrap_or(false);
                    if !consecutive {
                        bursts += 1;
                        total += 1; // pad frame of the previous burst folded below
                    }
                    total += 1;
                    prev = Some(*f);
                }
                STREAM_BASE_WORDS + bursts * BURST_HEADER_WORDS + total * fw
            }
        }
    }

    /// Bits shifted through the interface for one step's frames.
    pub fn step_bits(&self, part: Part, frames: &[FrameAddress]) -> u64 {
        self.stream_words(part, frames) * 32
    }

    /// Full cost of a relocation report (each step is a separate partial
    /// configuration file, as the procedure requires the system to run
    /// between steps).
    pub fn relocation_cost(&self, part: Part, report: &RelocationReport) -> RelocationCost {
        let mut bits = 0u64;
        let mut frames_written = 0u64;
        for step in &report.steps {
            bits += self.step_bits(part, &step.frames);
            frames_written += match self.granularity {
                WriteGranularity::Frame => step.frames.len() as u64,
                WriteGranularity::Column => {
                    let mut cols: Vec<(BlockType, u16)> =
                        step.frames.iter().map(|f| (f.block, f.major)).collect();
                    cols.sort();
                    cols.dedup();
                    cols.iter()
                        .map(|(b, _)| match b {
                            BlockType::Clb => rtm_fpga::part::FRAMES_PER_CLB_COLUMN as u64,
                            BlockType::Iob => rtm_fpga::part::FRAMES_PER_IOB_COLUMN as u64,
                            BlockType::Clock => rtm_fpga::part::FRAMES_CLOCK_COLUMN as u64,
                        })
                        .sum()
                }
            };
        }
        let seconds = self.interface.seconds_for_bits(bits);
        RelocationCost {
            bits,
            frames_written,
            seconds,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_default()
    }
}

impl fmt::Display for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-granular over {}", self.granularity, self.interface)
    }
}

/// Cost of one relocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelocationCost {
    /// Interface bits shifted.
    pub bits: u64,
    /// Frames written (after granularity expansion).
    pub frames_written: u64,
    /// Wall-clock seconds on the configured interface.
    pub seconds: f64,
}

impl RelocationCost {
    /// Milliseconds, the unit the paper reports.
    pub fn millis(&self) -> f64 {
        self.seconds * 1e3
    }
}

impl fmt::Display for RelocationCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} ms ({} frames, {} bits)",
            self.millis(),
            self.frames_written,
            self.bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(cols: &[u16], minors_per: u16) -> Vec<FrameAddress> {
        cols.iter()
            .flat_map(|c| (0..minors_per).map(move |m| FrameAddress::clb(*c, m)))
            .collect()
    }

    #[test]
    fn empty_step_costs_nothing() {
        let m = CostModel::paper_default();
        assert_eq!(m.step_bits(Part::Xcv200, &[]), 0);
    }

    #[test]
    fn column_granularity_charges_whole_columns() {
        let m = CostModel::paper_default();
        let one_frame = m.stream_words(Part::Xcv200, &frames(&[3], 1));
        let six_frames = m.stream_words(Part::Xcv200, &frames(&[3], 6));
        assert_eq!(one_frame, six_frames, "same column, same cost");
        let two_cols = m.stream_words(Part::Xcv200, &frames(&[3, 9], 1));
        assert!(two_cols > one_frame);
        // 49 frames × 17 words plus headers.
        assert_eq!(one_frame, 10 + 5 + 49 * 17);
    }

    #[test]
    fn frame_granularity_is_cheaper() {
        let col = CostModel::paper_default();
        let frame = CostModel::frame_granular(ConfigInterface::paper_default());
        let fs = frames(&[7], 4);
        assert!(frame.step_bits(Part::Xcv200, &fs) < col.step_bits(Part::Xcv200, &fs));
    }

    #[test]
    fn time_scales_inversely_with_tck() {
        let slow = CostModel {
            granularity: WriteGranularity::Column,
            interface: ConfigInterface::boundary_scan(10_000_000),
        };
        let fast = CostModel {
            granularity: WriteGranularity::Column,
            interface: ConfigInterface::boundary_scan(20_000_000),
        };
        let fs = frames(&[0, 1], 2);
        let ts = slow
            .interface
            .seconds_for_bits(slow.step_bits(Part::Xcv200, &fs));
        let tf = fast
            .interface
            .seconds_for_bits(fast.step_bits(Part::Xcv200, &fs));
        assert!((ts / tf - 2.0).abs() < 1e-9);
    }

    #[test]
    fn column_write_time_matches_paper_scale() {
        // One column write at 20 MHz Boundary Scan ≈ 1.36 ms; a
        // gated-clock relocation touching ~16 column-writes lands in the
        // paper's 22.6 ms regime.
        let m = CostModel::paper_default();
        let bits = m.step_bits(Part::Xcv200, &frames(&[5], 1));
        let secs = m.interface.seconds_for_bits(bits);
        assert!(secs > 1.2e-3 && secs < 1.6e-3, "column write {secs}s");
    }

    #[test]
    fn display() {
        let m = CostModel::paper_default();
        assert!(m.to_string().contains("column"));
        let c = RelocationCost {
            bits: 1000,
            frames_written: 2,
            seconds: 0.0226,
        };
        assert!(c.to_string().contains("22.60 ms"));
    }
}
