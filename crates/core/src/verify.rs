//! The transparency harness: relocate live logic while proving the
//! application never notices.
//!
//! Pairs a device-level simulation with the golden netlist model
//! (`rtm-sim`'s [`LockStep`]) and drives them through every relocation
//! step: after each configuration step the device sim re-syncs and both
//! models run the step's wait cycles with pseudo-random stimulus. The
//! paper's claims map to assertions:
//!
//! * "no output glitches" → no driver conflict / X observation;
//! * "no loss of state information" → no divergence from the golden
//!   model at any cycle;
//! * "without disturbing system operation" → the application keeps
//!   clocking during the whole procedure.

use crate::error::CoreError;
use crate::relocation::{relocate_cell, RelocationOptions, RelocationReport, StepRecord};
use rtm_fpga::Device;
use rtm_netlist::Netlist;
use rtm_sim::compare::{Divergence, LockStep};
use rtm_sim::design::PlacedDesign;
use rtm_sim::devsim::Glitch;
use rtm_sim::place::CellLoc;

/// A self-contained verification environment around one implemented
/// design. See the [crate-level example](crate).
#[derive(Debug)]
pub struct TransparencyHarness<'a> {
    netlist: &'a Netlist,
    dev: Device,
    placed: PlacedDesign,
    lockstep: LockStep<'a>,
    stimulus_state: u64,
    stimulus_override: Option<Vec<bool>>,
}

impl<'a> TransparencyHarness<'a> {
    /// Builds the harness; `placed` must be `netlist`'s implementation on
    /// `dev`.
    pub fn new(netlist: &'a Netlist, dev: Device, placed: PlacedDesign) -> Self {
        let lockstep = LockStep::new(netlist, &dev, &placed);
        TransparencyHarness {
            netlist,
            dev,
            placed,
            lockstep,
            stimulus_state: 0x9E3779B97F4A7C15,
            stimulus_override: None,
        }
    }

    /// The device (read-only).
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// The placed design (read-only).
    pub fn placed(&self) -> &PlacedDesign {
        &self.placed
    }

    /// The netlist under test.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Glitches observed so far.
    pub fn glitches(&self) -> &[Glitch] {
        self.lockstep.device_sim.glitches()
    }

    /// Output divergences observed so far.
    pub fn divergences(&self) -> &[Divergence] {
        self.lockstep.divergences()
    }

    /// True if nothing has been observed that the application could
    /// notice.
    pub fn transparent(&self) -> bool {
        self.lockstep.transparent()
    }

    /// Cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.lockstep.device_sim.cycle()
    }

    /// Pins the stimulus to a fixed input vector (e.g. holding a clock
    /// enable low for the skip-aux ablation); `None` restores the
    /// pseudo-random stream.
    pub fn set_stimulus_override(&mut self, fixed: Option<Vec<bool>>) {
        self.stimulus_override = fixed;
    }

    fn next_stimulus(&mut self) -> Vec<bool> {
        if let Some(fixed) = &self.stimulus_override {
            return fixed.clone();
        }
        let width = self.netlist.inputs().len();
        (0..width)
            .map(|_| {
                // SplitMix64 — deterministic, quick, uncorrelated bits.
                self.stimulus_state = self.stimulus_state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = self.stimulus_state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                (z ^ (z >> 31)) & 1 == 1
            })
            .collect()
    }

    /// Runs `cycles` clock cycles of the application with pseudo-random
    /// stimulus, comparing device and golden models every cycle.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (cannot occur for a well-formed
    /// harness).
    pub fn run_cycles(&mut self, cycles: u64) -> Result<(), CoreError> {
        for _ in 0..cycles {
            let inputs = self.next_stimulus();
            self.lockstep.step(&self.dev, &inputs)?;
        }
        Ok(())
    }

    /// Relocates the cell at `src` to `dst` while the application keeps
    /// running: after every procedure step the device simulation re-syncs
    /// and both models run the step's wait cycles.
    ///
    /// # Errors
    ///
    /// Propagates engine errors; the transparency verdict is *not* an
    /// error — query [`TransparencyHarness::transparent`].
    pub fn relocate_cell(
        &mut self,
        src: CellLoc,
        dst: CellLoc,
    ) -> Result<RelocationReport, CoreError> {
        self.relocate_cell_with(src, dst, &RelocationOptions::default())
    }

    /// Like [`TransparencyHarness::relocate_cell`] with explicit options
    /// (used by the skip-aux ablation).
    pub fn relocate_cell_with(
        &mut self,
        src: CellLoc,
        dst: CellLoc,
        opts: &RelocationOptions,
    ) -> Result<RelocationReport, CoreError> {
        // The engine borrows dev+placed; the lockstep sim is advanced in
        // the observer between steps. Observation points follow the
        // design tables, which the engine updates as soon as original and
        // replica agree; while a feed cell is mid-move, both locations
        // present the forced input value (aliases).
        let netlist_width = self.netlist.inputs().len();
        let mut stim_state = self.stimulus_state;
        let stim_override = self.stimulus_override.clone();
        let lockstep = &mut self.lockstep;
        let report = relocate_cell(
            &mut self.dev,
            &mut self.placed,
            src,
            dst,
            opts,
            |dev, placed: &PlacedDesign, record: &StepRecord| {
                for (i, (_, loc)) in placed.output_locs().iter().enumerate() {
                    lockstep.device_sim.move_output(i, *loc);
                }
                for (i, loc) in placed.placement.feed_locs.iter().enumerate() {
                    lockstep.device_sim.move_feed(i, *loc);
                    if *loc == dst || *loc == src {
                        // Mid-move: force both original and replica.
                        lockstep.device_sim.add_feed_alias(i, src);
                        lockstep.device_sim.add_feed_alias(i, dst);
                    }
                }
                lockstep.device_sim.sync(dev);
                for _ in 0..record.wait_cycles {
                    let inputs: Vec<bool> = match &stim_override {
                        Some(fixed) => fixed.clone(),
                        None => (0..netlist_width)
                            .map(|_| {
                                stim_state = stim_state.wrapping_add(0x9E3779B97F4A7C15);
                                let mut z = stim_state;
                                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                                (z ^ (z >> 31)) & 1 == 1
                            })
                            .collect(),
                    };
                    lockstep
                        .step(dev, &inputs)
                        .expect("lockstep width matches netlist");
                }
            },
        )?;
        self.stimulus_state = stim_state;

        // Settle observation points on the final tables.
        for (i, (_, loc)) in self.placed.output_locs().iter().enumerate() {
            self.lockstep.device_sim.move_output(i, *loc);
        }
        for (i, loc) in self.placed.placement.feed_locs.iter().enumerate() {
            self.lockstep.device_sim.move_feed(i, *loc);
        }
        self.lockstep.device_sim.sync(&self.dev);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_fpga::geom::{ClbCoord, Rect};
    use rtm_fpga::part::Part;
    use rtm_netlist::random::RandomCircuit;
    use rtm_netlist::techmap::map_to_luts;
    use rtm_netlist::{GateKind, Netlist};
    use rtm_sim::design::implement;

    fn build(netlist: &Netlist) -> (Device, PlacedDesign) {
        let mapped = map_to_luts(netlist).unwrap();
        let mut dev = Device::new(Part::Xcv200);
        let region = Rect::new(ClbCoord::new(4, 4), 10, 10);
        let placed = implement(&mut dev, &mapped, region).unwrap();
        (dev, placed)
    }

    fn toggler() -> Netlist {
        let mut n = Netlist::new("toggler");
        let q = n.add_ff_ce(None, None, false);
        let inv = n.add_gate(GateKind::Not, &[q]);
        n.set_ff_input(q, inv, None);
        n.add_output("q", q);
        n
    }

    fn gated_counter() -> Netlist {
        let mut n = Netlist::new("gated2");
        let ce = n.add_input("ce");
        let q0 = n.add_ff_ce(None, None, false);
        let q1 = n.add_ff_ce(None, None, false);
        let d0 = n.add_gate(GateKind::Not, &[q0]);
        let d1 = n.add_gate(GateKind::Xor, &[q1, q0]);
        n.set_ff_input(q0, d0, Some(ce));
        n.set_ff_input(q1, d1, Some(ce));
        n.add_output("q0", q0);
        n.add_output("q1", q1);
        n
    }

    #[test]
    fn free_running_ff_relocates_transparently() {
        let netlist = toggler();
        let (dev, placed) = build(&netlist);
        let mut h = TransparencyHarness::new(&netlist, dev, placed);
        h.run_cycles(10).unwrap();
        // Move every design cell, one at a time, to a far free corner.
        for i in 0..h.placed().design.cells.len() {
            let src = h.placed().cell_loc(i);
            let dst = (ClbCoord::new(20, 20 + i as u16), 0);
            let report = h.relocate_cell(src, dst).unwrap();
            assert!(report.frames_total() > 0);
            h.run_cycles(10).unwrap();
        }
        assert!(
            h.transparent(),
            "glitches: {:?}, div: {:?}",
            h.glitches(),
            h.divergences()
        );
    }

    #[test]
    fn gated_ff_relocates_transparently_with_aux_circuit() {
        let netlist = gated_counter();
        let (dev, placed) = build(&netlist);
        let mut h = TransparencyHarness::new(&netlist, dev, placed);
        h.run_cycles(16).unwrap();
        // Relocate both gated FF cells.
        for i in 0..h.placed().design.cells.len() {
            if !h.placed().design.cells[i].storage.is_sequential() {
                continue;
            }
            let src = h.placed().cell_loc(i);
            let dst = (ClbCoord::new(22, 20 + 2 * i as u16), 1);
            let report = h.relocate_cell(src, dst).unwrap();
            assert_eq!(report.class, crate::RelocationClass::GatedClock);
            assert_eq!(report.aux_sites.len(), 3);
            h.run_cycles(16).unwrap();
        }
        assert!(
            h.transparent(),
            "glitches: {:?}, div: {:?}",
            h.glitches(),
            h.divergences()
        );
    }

    #[test]
    fn skip_aux_ablation_loses_state_under_idle_ce() {
        // A gated FF whose CE is held low during the move: skipping the
        // auxiliary circuit must corrupt the observation (the replica
        // never captures), demonstrating the circuit is load-bearing.
        let netlist = gated_counter();
        let (dev, placed) = build(&netlist);
        let mut h = TransparencyHarness::new(&netlist, dev, placed);
        // Count up with CE=1 so the FFs hold live state…
        h.set_stimulus_override(Some(vec![true]));
        h.run_cycles(3).unwrap();
        // …then hold CE low (the paper's problem scenario) and move.
        h.set_stimulus_override(Some(vec![false]));
        h.run_cycles(2).unwrap();
        let mut moved = false;
        for i in 0..h.placed().design.cells.len() {
            if !h.placed().design.cells[i].storage.is_sequential() {
                continue;
            }
            let src = h.placed().cell_loc(i);
            let dst = (ClbCoord::new(24, 24 + 2 * i as u16), 2);
            let opts = RelocationOptions {
                skip_aux: true,
                ..Default::default()
            };
            h.relocate_cell_with(src, dst, &opts).unwrap();
            moved = true;
        }
        assert!(moved);
        h.run_cycles(10).unwrap();
        assert!(
            !h.transparent(),
            "skipping the aux circuit must be observable for gated-clock cells"
        );

        // Control: the identical scenario WITH the aux circuit stays
        // transparent.
        let netlist2 = gated_counter();
        let (dev2, placed2) = build(&netlist2);
        let mut h2 = TransparencyHarness::new(&netlist2, dev2, placed2);
        h2.set_stimulus_override(Some(vec![true]));
        h2.run_cycles(3).unwrap();
        h2.set_stimulus_override(Some(vec![false]));
        h2.run_cycles(2).unwrap();
        for i in 0..h2.placed().design.cells.len() {
            if !h2.placed().design.cells[i].storage.is_sequential() {
                continue;
            }
            let src = h2.placed().cell_loc(i);
            let dst = (ClbCoord::new(24, 24 + 2 * i as u16), 2);
            h2.relocate_cell(src, dst).unwrap();
        }
        h2.run_cycles(10).unwrap();
        assert!(
            h2.transparent(),
            "aux circuit must transfer state even with CE idle: {:?} {:?}",
            h2.glitches(),
            h2.divergences()
        );
    }

    #[test]
    fn random_circuit_survives_relocation_of_every_cell() {
        let netlist = RandomCircuit::free_running(5, 15, 77).generate();
        let (dev, placed) = build(&netlist);
        let mut h = TransparencyHarness::new(&netlist, dev, placed);
        h.run_cycles(12).unwrap();
        let n = h.placed().design.cells.len();
        for i in 0..n {
            let src = h.placed().cell_loc(i);
            let dst = (ClbCoord::new(16 + (i as u16 % 8), 16 + (i as u16 / 8)), 3);
            h.relocate_cell(src, dst).unwrap();
            h.run_cycles(4).unwrap();
        }
        h.run_cycles(30).unwrap();
        assert!(
            h.transparent(),
            "glitches: {:?}, div: {:?}",
            h.glitches(),
            h.divergences()
        );
    }

    #[test]
    fn feed_cell_relocates() {
        let netlist = gated_counter();
        let (dev, placed) = build(&netlist);
        let mut h = TransparencyHarness::new(&netlist, dev, placed);
        h.run_cycles(8).unwrap();
        let src = h.placed().feed_loc(0);
        let dst = (ClbCoord::new(25, 25), 0);
        h.relocate_cell(src, dst).unwrap();
        assert_eq!(h.placed().feed_loc(0), dst);
        h.run_cycles(8).unwrap();
        assert!(
            h.transparent(),
            "glitches: {:?}, div: {:?}",
            h.glitches(),
            h.divergences()
        );
    }

    #[test]
    fn asynchronous_latch_relocates_transparently() {
        // The paper's third class: transparent latches, handled by the
        // same auxiliary circuit with the latch enable in place of CE.
        let mut n = Netlist::new("latched");
        let d = n.add_input("d");
        let en = n.add_input("en");
        let q = n.add_latch(None, None, false);
        n.set_latch_input(q, d, en);
        let o = n.add_gate(GateKind::Not, &[q]);
        n.add_output("o", o);
        let (dev, placed) = build(&n);
        let mut h = TransparencyHarness::new(&n, dev, placed);
        h.run_cycles(12).unwrap();
        let i = (0..h.placed().design.cells.len())
            .find(|i| h.placed().design.cells[*i].storage.is_sequential())
            .unwrap();
        let src = h.placed().cell_loc(i);
        let report = h.relocate_cell(src, (ClbCoord::new(20, 20), 0)).unwrap();
        assert_eq!(report.class, crate::RelocationClass::Asynchronous);
        h.run_cycles(20).unwrap();
        assert!(h.transparent(), "{:?} {:?}", h.glitches(), h.divergences());
    }

    #[test]
    fn staged_relocation_bounds_hop_length_and_stays_transparent() {
        use crate::relocation::relocate_cell_staged;
        let netlist = gated_counter();
        let (dev, placed) = build(&netlist);
        let mut h = TransparencyHarness::new(&netlist, dev, placed);
        h.run_cycles(10).unwrap();
        // Drive the staged engine directly through the harness's device.
        // (The harness API wraps single relocations; for the staged variant
        // we reuse its internals via a fresh environment.)
        let netlist2 = gated_counter();
        let mapped = map_to_luts(&netlist2).unwrap();
        let mut dev = Device::new(Part::Xcv200);
        let region = Rect::new(ClbCoord::new(2, 2), 8, 8);
        let mut placed = implement(&mut dev, &mapped, region).unwrap();
        let victim = (0..placed.design.cells.len())
            .find(|i| placed.design.cells[*i].storage.is_sequential())
            .unwrap();
        let src = placed.placement.cell_locs[victim];
        let dst = (ClbCoord::new(26, 38), 0); // far corner
        let reports = relocate_cell_staged(
            &mut dev,
            &mut placed,
            src,
            dst,
            6,
            &crate::relocation::RelocationOptions::default(),
            |_, _, _| {},
        )
        .unwrap();
        assert!(reports.len() >= 3, "a far move must take several stages");
        // Every hop is bounded and the chain ends at the destination.
        let mut cur = src;
        for r in &reports {
            assert_eq!(r.src, cur);
            assert!(
                r.src.0.manhattan(r.dst.0) <= 6 + 2,
                "hop {} -> {} exceeds bound",
                r.src.0,
                r.dst.0
            );
            cur = r.dst;
        }
        assert_eq!(cur, dst);
        assert_eq!(placed.placement.cell_locs[victim], dst);
    }

    #[test]
    fn ram_cell_refused() {
        let netlist = toggler();
        let (mut dev, placed) = build(&netlist);
        // Flip a placed cell into RAM mode behind the design's back.
        let loc = placed.cell_loc(0);
        let mut clb = *dev.clb(loc.0).unwrap();
        clb.cells[loc.1].ram_mode = true;
        dev.set_clb(loc.0, clb).unwrap();
        let mut h = TransparencyHarness::new(&netlist, dev, placed);
        let err = h
            .relocate_cell(loc, (ClbCoord::new(20, 20), 0))
            .unwrap_err();
        assert!(matches!(err, CoreError::RamRelocationUnsupported { .. }));
    }
}
