//! Storage elements: edge-triggered flip-flops and transparent latches.
//!
//! The paper distinguishes three implementation classes whose state-transfer
//! requirements differ (§2):
//!
//! * **synchronous free-running clock** — the two-phase procedure alone
//!   suffices, because the replica FF acquires state from the paralleled
//!   inputs within one clock cycle;
//! * **synchronous gated-clock** — the clock-enable (CE) may be inactive for
//!   arbitrarily long, so an auxiliary relocation circuit must transfer the
//!   state explicitly while staying coherent if CE fires mid-transfer;
//! * **asynchronous** — transparent latches controlled by an input control
//!   signal; handled by the same auxiliary circuit with the latch-enable in
//!   place of CE.

use std::fmt;

/// Which storage element (if any) a logic cell instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StorageKind {
    /// Purely combinational cell: the LUT output bypasses storage.
    #[default]
    None,
    /// Edge-triggered D flip-flop (rising edge).
    FlipFlop,
    /// Level-sensitive transparent latch: transparent while the enable is
    /// high, holding when it falls (value stored on the 1→0 transition,
    /// paper §2).
    Latch,
}

impl StorageKind {
    /// True if the cell holds state that a relocation must preserve.
    pub fn is_sequential(&self) -> bool {
        !matches!(self, StorageKind::None)
    }
}

impl fmt::Display for StorageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StorageKind::None => "comb",
            StorageKind::FlipFlop => "ff",
            StorageKind::Latch => "latch",
        };
        f.write_str(s)
    }
}

/// How the storage element's clock/enable is driven — the paper's three
/// implementation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClockingClass {
    /// Synchronous, clock always toggling, CE tied active.
    #[default]
    FreeRunning,
    /// Synchronous, input acquisition gated by a clock-enable signal.
    GatedClock,
    /// Asynchronous transparent latch controlled by an input signal.
    Asynchronous,
}

impl ClockingClass {
    /// True if a relocation of this class requires the auxiliary relocation
    /// circuit of Fig. 3 (state cannot be assumed to refresh on its own).
    pub fn needs_auxiliary_circuit(&self) -> bool {
        matches!(
            self,
            ClockingClass::GatedClock | ClockingClass::Asynchronous
        )
    }
}

impl fmt::Display for ClockingClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClockingClass::FreeRunning => "free-running",
            ClockingClass::GatedClock => "gated-clock",
            ClockingClass::Asynchronous => "asynchronous",
        };
        f.write_str(s)
    }
}

/// Behavioural model of one storage element, used by the simulator and by
/// the readback path (Virtex frames capture FF state).
///
/// ```
/// use rtm_fpga::storage::{StorageElement, StorageKind};
/// let mut ff = StorageElement::new(StorageKind::FlipFlop);
/// ff.clock_edge(true, true);   // D=1, CE=1, rising edge
/// assert!(ff.q());
/// ff.clock_edge(false, false); // CE=0: holds
/// assert!(ff.q());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StorageElement {
    kind: StorageKind,
    state: bool,
}

impl StorageElement {
    /// A storage element of the given kind, initial state 0 (the Virtex
    /// power-up/GSR value unless INIT is set).
    pub fn new(kind: StorageKind) -> Self {
        StorageElement { kind, state: false }
    }

    /// The element kind.
    pub fn kind(&self) -> StorageKind {
        self.kind
    }

    /// Current stored value (Q output).
    pub fn q(&self) -> bool {
        self.state
    }

    /// Forces the stored value — models configuration-memory initialisation
    /// and the state-capture write performed by the relocation procedure.
    pub fn load(&mut self, value: bool) {
        self.state = value;
    }

    /// Applies a rising clock edge with data `d` and clock-enable `ce`.
    ///
    /// No-op for combinational cells and for latches (latches use
    /// [`StorageElement::latch_update`]).
    pub fn clock_edge(&mut self, d: bool, ce: bool) {
        if self.kind == StorageKind::FlipFlop && ce {
            self.state = d;
        }
    }

    /// Applies latch semantics: while `enable` is high the latch is
    /// transparent (output follows `d`); the value present when `enable`
    /// falls remains stored.
    ///
    /// No-op for non-latch cells.
    pub fn latch_update(&mut self, d: bool, enable: bool) {
        if self.kind == StorageKind::Latch && enable {
            self.state = d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ff_respects_clock_enable() {
        let mut ff = StorageElement::new(StorageKind::FlipFlop);
        ff.clock_edge(true, false);
        assert!(!ff.q(), "CE low must block capture");
        ff.clock_edge(true, true);
        assert!(ff.q());
        ff.clock_edge(false, false);
        assert!(ff.q(), "CE low must hold state");
    }

    #[test]
    fn latch_transparent_when_enabled() {
        let mut latch = StorageElement::new(StorageKind::Latch);
        latch.latch_update(true, true);
        assert!(latch.q());
        latch.latch_update(false, true);
        assert!(!latch.q());
        latch.latch_update(true, false);
        assert!(!latch.q(), "disabled latch must hold");
    }

    #[test]
    fn comb_cell_ignores_all_updates() {
        let mut c = StorageElement::new(StorageKind::None);
        c.clock_edge(true, true);
        c.latch_update(true, true);
        assert!(!c.q());
        assert!(!c.kind().is_sequential());
    }

    #[test]
    fn load_overrides_state() {
        let mut ff = StorageElement::new(StorageKind::FlipFlop);
        ff.load(true);
        assert!(ff.q());
    }

    #[test]
    fn clocking_class_auxiliary_requirements() {
        assert!(!ClockingClass::FreeRunning.needs_auxiliary_circuit());
        assert!(ClockingClass::GatedClock.needs_auxiliary_circuit());
        assert!(ClockingClass::Asynchronous.needs_auxiliary_circuit());
    }

    #[test]
    fn displays() {
        assert_eq!(StorageKind::FlipFlop.to_string(), "ff");
        assert_eq!(ClockingClass::GatedClock.to_string(), "gated-clock");
    }
}
