//! Two-dimensional CLB-array geometry: coordinates and rectangles.
//!
//! The paper's rearrangement procedures reason about *contiguous* regions of
//! the CLB array; [`Rect`] is the currency used by the placement and
//! defragmentation crates.

use std::fmt;

/// The coordinate of one CLB in the array.
///
/// Rows run top-to-bottom, columns left-to-right, both starting at 0 —
/// matching the Virtex configuration-column order (frames extend from the
/// top to the bottom of a column).
///
/// ```
/// use rtm_fpga::geom::ClbCoord;
/// let c = ClbCoord::new(2, 5);
/// assert_eq!(c.manhattan(ClbCoord::new(4, 1)), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClbCoord {
    /// Row index (0 = top).
    pub row: u16,
    /// Column index (0 = left).
    pub col: u16,
}

impl ClbCoord {
    /// Creates a coordinate at `(row, col)`.
    pub fn new(row: u16, col: u16) -> Self {
        ClbCoord { row, col }
    }

    /// Manhattan distance to `other`, in CLB hops.
    ///
    /// Relocations to *nearby* CLBs are preferred by the paper (§3) because
    /// long replica paths increase propagation delay.
    pub fn manhattan(self, other: ClbCoord) -> u32 {
        let dr = (self.row as i32 - other.row as i32).unsigned_abs();
        let dc = (self.col as i32 - other.col as i32).unsigned_abs();
        dr + dc
    }

    /// The coordinate translated by `(drow, dcol)`, or `None` on underflow.
    pub fn offset(self, drow: i32, dcol: i32) -> Option<ClbCoord> {
        let row = self.row as i32 + drow;
        let col = self.col as i32 + dcol;
        if row < 0 || col < 0 || row > u16::MAX as i32 || col > u16::MAX as i32 {
            None
        } else {
            Some(ClbCoord::new(row as u16, col as u16))
        }
    }
}

impl fmt::Display for ClbCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}C{}", self.row, self.col)
    }
}

impl From<(u16, u16)> for ClbCoord {
    fn from((row, col): (u16, u16)) -> Self {
        ClbCoord::new(row, col)
    }
}

/// An axis-aligned rectangle of CLBs, given by its top-left corner and size.
///
/// A `Rect` with `rows == 0 || cols == 0` is empty.
///
/// ```
/// use rtm_fpga::geom::{ClbCoord, Rect};
/// let r = Rect::new(ClbCoord::new(1, 1), 2, 3);
/// assert_eq!(r.area(), 6);
/// assert!(r.contains(ClbCoord::new(2, 3)));
/// assert!(!r.contains(ClbCoord::new(3, 1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rect {
    /// Top-left corner.
    pub origin: ClbCoord,
    /// Number of rows (height).
    pub rows: u16,
    /// Number of columns (width).
    pub cols: u16,
}

impl Rect {
    /// Creates a rectangle with top-left `origin` spanning `rows` × `cols`.
    pub fn new(origin: ClbCoord, rows: u16, cols: u16) -> Self {
        Rect { origin, rows, cols }
    }

    /// Creates a rectangle from corner coordinates (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `bottom_right` is above or left of `top_left`.
    pub fn from_corners(top_left: ClbCoord, bottom_right: ClbCoord) -> Self {
        assert!(
            bottom_right.row >= top_left.row && bottom_right.col >= top_left.col,
            "bottom-right corner must not precede top-left"
        );
        Rect {
            origin: top_left,
            rows: bottom_right.row - top_left.row + 1,
            cols: bottom_right.col - top_left.col + 1,
        }
    }

    /// Number of CLBs covered.
    pub fn area(&self) -> u32 {
        self.rows as u32 * self.cols as u32
    }

    /// True if the rectangle covers no CLBs.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Row just past the bottom edge.
    pub fn row_end(&self) -> u16 {
        self.origin.row + self.rows
    }

    /// Column just past the right edge.
    pub fn col_end(&self) -> u16 {
        self.origin.col + self.cols
    }

    /// True if `coord` lies inside the rectangle.
    pub fn contains(&self, coord: ClbCoord) -> bool {
        coord.row >= self.origin.row
            && coord.row < self.row_end()
            && coord.col >= self.origin.col
            && coord.col < self.col_end()
    }

    /// True if `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        if other.is_empty() {
            return true;
        }
        other.origin.row >= self.origin.row
            && other.origin.col >= self.origin.col
            && other.row_end() <= self.row_end()
            && other.col_end() <= self.col_end()
    }

    /// True if the two rectangles share at least one CLB.
    pub fn intersects(&self, other: &Rect) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        self.origin.row < other.row_end()
            && other.origin.row < self.row_end()
            && self.origin.col < other.col_end()
            && other.origin.col < self.col_end()
    }

    /// The overlapping region, if any.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        let row = self.origin.row.max(other.origin.row);
        let col = self.origin.col.max(other.origin.col);
        let row_end = self.row_end().min(other.row_end());
        let col_end = self.col_end().min(other.col_end());
        Some(Rect::new(
            ClbCoord::new(row, col),
            row_end - row,
            col_end - col,
        ))
    }

    /// Iterator over every CLB coordinate inside the rectangle, row-major.
    pub fn iter(&self) -> RectIter {
        RectIter {
            rect: *self,
            next: if self.is_empty() {
                None
            } else {
                Some(self.origin)
            },
        }
    }

    /// Inclusive range of configuration columns the rectangle touches.
    pub fn column_span(&self) -> std::ops::Range<u16> {
        self.origin.col..self.col_end()
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}x{}", self.origin, self.rows, self.cols)
    }
}

/// Iterator over the CLB coordinates of a [`Rect`], produced by [`Rect::iter`].
#[derive(Debug, Clone)]
pub struct RectIter {
    rect: Rect,
    next: Option<ClbCoord>,
}

impl Iterator for RectIter {
    type Item = ClbCoord;

    fn next(&mut self) -> Option<ClbCoord> {
        let cur = self.next?;
        let mut nxt = cur;
        nxt.col += 1;
        if nxt.col >= self.rect.col_end() {
            nxt.col = self.rect.origin.col;
            nxt.row += 1;
        }
        self.next = if nxt.row >= self.rect.row_end() {
            None
        } else {
            Some(nxt)
        };
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_symmetric() {
        let a = ClbCoord::new(3, 9);
        let b = ClbCoord::new(7, 2);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn offset_rejects_underflow() {
        assert_eq!(ClbCoord::new(0, 0).offset(-1, 0), None);
        assert_eq!(ClbCoord::new(0, 0).offset(0, -1), None);
        assert_eq!(
            ClbCoord::new(1, 1).offset(-1, -1),
            Some(ClbCoord::new(0, 0))
        );
    }

    #[test]
    fn rect_iter_row_major_covers_area() {
        let r = Rect::new(ClbCoord::new(1, 2), 2, 3);
        let v: Vec<_> = r.iter().collect();
        assert_eq!(v.len(), r.area() as usize);
        assert_eq!(v[0], ClbCoord::new(1, 2));
        assert_eq!(v[1], ClbCoord::new(1, 3));
        assert_eq!(v[3], ClbCoord::new(2, 2));
        assert_eq!(*v.last().unwrap(), ClbCoord::new(2, 4));
    }

    #[test]
    fn empty_rect_iterates_nothing() {
        let r = Rect::new(ClbCoord::new(0, 0), 0, 5);
        assert_eq!(r.iter().count(), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn intersection_basics() {
        let a = Rect::new(ClbCoord::new(0, 0), 4, 4);
        let b = Rect::new(ClbCoord::new(2, 2), 4, 4);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(ClbCoord::new(2, 2), 2, 2));
        let c = Rect::new(ClbCoord::new(4, 0), 1, 1);
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn touching_rects_do_not_intersect() {
        let a = Rect::new(ClbCoord::new(0, 0), 2, 2);
        let b = Rect::new(ClbCoord::new(0, 2), 2, 2);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn contains_rect_edges() {
        let outer = Rect::new(ClbCoord::new(0, 0), 4, 4);
        assert!(outer.contains_rect(&Rect::new(ClbCoord::new(2, 2), 2, 2)));
        assert!(!outer.contains_rect(&Rect::new(ClbCoord::new(3, 3), 2, 2)));
        assert!(outer.contains_rect(&Rect::new(ClbCoord::new(9, 9), 0, 0)));
    }

    #[test]
    fn from_corners_inclusive() {
        let r = Rect::from_corners(ClbCoord::new(1, 1), ClbCoord::new(3, 4));
        assert_eq!(r.rows, 3);
        assert_eq!(r.cols, 4);
    }

    #[test]
    #[should_panic(expected = "bottom-right")]
    fn from_corners_panics_on_inverted() {
        let _ = Rect::from_corners(ClbCoord::new(3, 3), ClbCoord::new(1, 1));
    }
}
