//! The logic cell: one 4-LUT plus one storage element.
//!
//! A Virtex CLB comprises four of these cells (two slices of two); the paper
//! relocates them individually (§2: "each CLB cell can be considered
//! individually").

use crate::lut::Lut;
use crate::storage::{ClockingClass, StorageKind};
use std::fmt;

/// Number of configuration bits a [`LogicCell`] occupies in our frame
/// layout: 16 LUT bits + 8 mode/control bits.
pub const CELL_CONFIG_BITS: usize = 24;

/// Configuration of one logic cell.
///
/// The `state` bit (FF/latch content) is *not* part of this struct — it
/// lives in the configuration memory's state positions and in the
/// simulator, mirroring how Virtex mixes "internal CLB configuration and
/// state information" within the same frames (paper §2).
///
/// ```
/// use rtm_fpga::cell::LogicCell;
/// use rtm_fpga::lut::Lut;
/// use rtm_fpga::storage::StorageKind;
///
/// let mut cell = LogicCell::default();
/// cell.lut = Lut::from_fn(|i| i[0] ^ i[1]);
/// cell.storage = StorageKind::FlipFlop;
/// cell.registered_output = true;
/// assert!(cell.is_used());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LogicCell {
    /// The 4-input LUT truth table.
    pub lut: Lut,
    /// Storage element kind (none / FF / latch).
    pub storage: StorageKind,
    /// How the storage element is clocked — determines the relocation class.
    pub clocking: ClockingClass,
    /// If true, the cell output is taken from the storage element (Q);
    /// otherwise the LUT output bypasses it.
    pub registered_output: bool,
    /// If true, the LUT is configured as 16×1 distributed RAM. The paper
    /// shows such cells **cannot** be relocated on-line (§2, last
    /// paragraph); the relocation engine refuses them.
    pub ram_mode: bool,
    /// If true, the cell uses the clock-enable input.
    pub uses_ce: bool,
    /// If true, the storage element's D input comes from the dedicated
    /// fabric bypass pin (`Wire::CellDx`) instead of the LUT output. The
    /// gated-clock relocation procedure uses this path so that switching
    /// the replica's data source is a single-bit (glitch-free) write.
    pub d_bypass: bool,
}

impl LogicCell {
    /// An unconfigured (empty) cell.
    pub fn new() -> Self {
        LogicCell::default()
    }

    /// True if the cell implements any logic at all.
    ///
    /// An unused cell has a constant-0 LUT, no storage and no RAM mode —
    /// the reset state of the configuration memory.
    pub fn is_used(&self) -> bool {
        *self != LogicCell::default()
    }

    /// True if relocating this cell requires state transfer.
    pub fn is_sequential(&self) -> bool {
        self.storage.is_sequential()
    }

    /// Encodes the cell into `CELL_CONFIG_BITS` configuration bits.
    pub fn encode(&self) -> [bool; CELL_CONFIG_BITS] {
        let mut out = [false; CELL_CONFIG_BITS];
        for (i, bit) in out.iter_mut().enumerate().take(16) {
            *bit = (self.lut.bits() >> i) & 1 == 1;
        }
        let (s0, s1) = match self.storage {
            StorageKind::None => (false, false),
            StorageKind::FlipFlop => (true, false),
            StorageKind::Latch => (false, true),
        };
        out[16] = s0;
        out[17] = s1;
        let (c0, c1) = match self.clocking {
            ClockingClass::FreeRunning => (false, false),
            ClockingClass::GatedClock => (true, false),
            ClockingClass::Asynchronous => (false, true),
        };
        out[18] = c0;
        out[19] = c1;
        out[20] = self.registered_output;
        out[21] = self.ram_mode;
        out[22] = self.uses_ce;
        out[23] = self.d_bypass;
        out
    }

    /// Decodes a cell from configuration bits (inverse of
    /// [`LogicCell::encode`]).
    pub fn decode(bits: &[bool; CELL_CONFIG_BITS]) -> Self {
        let mut lut_bits = 0u16;
        for (i, b) in bits.iter().take(16).enumerate() {
            if *b {
                lut_bits |= 1 << i;
            }
        }
        let storage = match (bits[16], bits[17]) {
            (false, false) => StorageKind::None,
            (true, false) => StorageKind::FlipFlop,
            (false, true) | (true, true) => StorageKind::Latch,
        };
        let clocking = match (bits[18], bits[19]) {
            (false, false) => ClockingClass::FreeRunning,
            (true, false) => ClockingClass::GatedClock,
            (false, true) | (true, true) => ClockingClass::Asynchronous,
        };
        LogicCell {
            lut: Lut::from_bits(lut_bits),
            storage,
            clocking,
            registered_output: bits[20],
            ram_mode: bits[21],
            uses_ce: bits[22],
            d_bypass: bits[23],
        }
    }
}

impl fmt::Display for LogicCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}{}{}",
            self.lut,
            self.storage,
            self.clocking,
            if self.registered_output { " reg" } else { "" },
            if self.ram_mode { " ram" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_cell_is_unused() {
        assert!(!LogicCell::default().is_used());
        let mut c = LogicCell::default();
        c.lut.set_bits(1);
        assert!(c.is_used());
    }

    #[test]
    fn encode_decode_roundtrip_manual() {
        let cell = LogicCell {
            lut: Lut::from_bits(0xA5C3),
            storage: StorageKind::Latch,
            clocking: ClockingClass::Asynchronous,
            registered_output: true,
            ram_mode: false,
            uses_ce: true,
            d_bypass: true,
        };
        assert_eq!(LogicCell::decode(&cell.encode()), cell);
    }

    #[test]
    fn sequential_detection() {
        let mut c = LogicCell::default();
        assert!(!c.is_sequential());
        c.storage = StorageKind::FlipFlop;
        assert!(c.is_sequential());
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(lut in any::<u16>(),
                                   storage in 0u8..3,
                                   clocking in 0u8..3,
                                   reg in any::<bool>(),
                                   ram in any::<bool>(),
                                   ce in any::<bool>()) {
            let cell = LogicCell {
                lut: Lut::from_bits(lut),
                storage: match storage {
                    0 => StorageKind::None,
                    1 => StorageKind::FlipFlop,
                    _ => StorageKind::Latch,
                },
                clocking: match clocking {
                    0 => ClockingClass::FreeRunning,
                    1 => ClockingClass::GatedClock,
                    _ => ClockingClass::Asynchronous,
                },
                registered_output: reg,
                ram_mode: ram,
                uses_ce: ce,
                d_bypass: ram ^ reg,
            };
            prop_assert_eq!(LogicCell::decode(&cell.encode()), cell);
        }
    }
}
