//! Virtex family geometry tables.
//!
//! Frame counts follow the published Virtex configuration architecture:
//! 48 frames per CLB column, 18 configuration bits contributed per CLB row
//! per frame; frame payloads are padded to 32-bit configuration words.
//! The XCV200 (28×42 CLBs) is the part used in the paper's experiments.

use std::fmt;

/// Frames in one CLB configuration column.
pub const FRAMES_PER_CLB_COLUMN: u16 = 48;
/// Configuration bits each frame contributes to one CLB row.
pub const BITS_PER_ROW_PER_FRAME: usize = 18;
/// Frames in the centre (clock) column.
pub const FRAMES_CLOCK_COLUMN: u16 = 8;
/// Frames in each IOB column (two per device, left and right edges).
pub const FRAMES_PER_IOB_COLUMN: u16 = 54;

/// A member of the Virtex device family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Part {
    /// 16×24 CLBs.
    Xcv50,
    /// 20×30 CLBs.
    Xcv100,
    /// 28×42 CLBs — the device used in the paper.
    Xcv200,
    /// 32×48 CLBs.
    Xcv300,
    /// 40×60 CLBs.
    Xcv400,
    /// 56×84 CLBs.
    Xcv800,
    /// 64×96 CLBs.
    Xcv1000,
}

impl Part {
    /// All parts, smallest first.
    pub const ALL: [Part; 7] = [
        Part::Xcv50,
        Part::Xcv100,
        Part::Xcv200,
        Part::Xcv300,
        Part::Xcv400,
        Part::Xcv800,
        Part::Xcv1000,
    ];

    /// CLB rows.
    pub fn clb_rows(self) -> u16 {
        match self {
            Part::Xcv50 => 16,
            Part::Xcv100 => 20,
            Part::Xcv200 => 28,
            Part::Xcv300 => 32,
            Part::Xcv400 => 40,
            Part::Xcv800 => 56,
            Part::Xcv1000 => 64,
        }
    }

    /// CLB columns.
    pub fn clb_cols(self) -> u16 {
        match self {
            Part::Xcv50 => 24,
            Part::Xcv100 => 30,
            Part::Xcv200 => 42,
            Part::Xcv300 => 48,
            Part::Xcv400 => 60,
            Part::Xcv800 => 84,
            Part::Xcv1000 => 96,
        }
    }

    /// Total CLBs.
    pub fn clb_count(self) -> u32 {
        self.clb_rows() as u32 * self.clb_cols() as u32
    }

    /// Logic cells (four per CLB).
    pub fn cell_count(self) -> u32 {
        self.clb_count() * 4
    }

    /// Payload bits of one frame (before word padding): 18 bits per CLB row
    /// plus one 18-bit pad group at the top and bottom for the IOB rows.
    pub fn frame_payload_bits(self) -> usize {
        BITS_PER_ROW_PER_FRAME * (self.clb_rows() as usize + 2)
    }

    /// Frame length in 32-bit configuration words (padded).
    pub fn frame_words(self) -> usize {
        self.frame_payload_bits().div_ceil(32)
    }

    /// Frame length in bits as shifted through the configuration port.
    pub fn frame_shift_bits(self) -> usize {
        self.frame_words() * 32
    }

    /// Total frames on the device: CLB columns + 2 IOB columns + clock
    /// column.
    pub fn total_frames(self) -> u32 {
        self.clb_cols() as u32 * FRAMES_PER_CLB_COLUMN as u32
            + 2 * FRAMES_PER_IOB_COLUMN as u32
            + FRAMES_CLOCK_COLUMN as u32
    }

    /// Approximate full-configuration size in bits (frames × padded length).
    pub fn config_size_bits(self) -> u64 {
        self.total_frames() as u64 * self.frame_shift_bits() as u64
    }

    /// The JEDEC-style IDCODE used by the boundary-scan model.
    pub fn idcode(self) -> u32 {
        // Family 0x003 (Virtex), size code = index, manufacturer 0x049
        // (Xilinx), LSB always 1 per IEEE 1149.1.
        let size = Part::ALL.iter().position(|p| *p == self).unwrap() as u32 + 1;
        (0x3 << 28) | (size << 21) | (0x049 << 1) | 1
    }
}

impl fmt::Display for Part {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Part::Xcv50 => "XCV50",
            Part::Xcv100 => "XCV100",
            Part::Xcv200 => "XCV200",
            Part::Xcv300 => "XCV300",
            Part::Xcv400 => "XCV400",
            Part::Xcv800 => "XCV800",
            Part::Xcv1000 => "XCV1000",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xcv200_geometry_matches_paper_device() {
        let p = Part::Xcv200;
        assert_eq!(p.clb_rows(), 28);
        assert_eq!(p.clb_cols(), 42);
        assert_eq!(p.clb_count(), 1176);
        assert_eq!(p.cell_count(), 4704);
    }

    #[test]
    fn frame_lengths_grow_with_rows() {
        let mut prev = 0;
        for p in Part::ALL {
            let bits = p.frame_payload_bits();
            assert!(bits > prev, "{p} frame bits must grow");
            prev = bits;
            assert!(p.frame_shift_bits() >= bits);
            assert_eq!(p.frame_shift_bits() % 32, 0);
        }
    }

    #[test]
    fn xcv200_frame_words() {
        // 18 * (28 + 2) = 540 bits -> 17 words.
        assert_eq!(Part::Xcv200.frame_payload_bits(), 540);
        assert_eq!(Part::Xcv200.frame_words(), 17);
    }

    #[test]
    fn total_frames_count() {
        // 42 * 48 + 2 * 54 + 8 = 2132 for XCV200.
        assert_eq!(Part::Xcv200.total_frames(), 2132);
    }

    #[test]
    fn idcodes_distinct_and_lsb_set() {
        let mut seen = std::collections::HashSet::new();
        for p in Part::ALL {
            let id = p.idcode();
            assert_eq!(id & 1, 1, "IEEE 1149.1 requires IDCODE LSB = 1");
            assert!(seen.insert(id), "duplicate idcode for {p}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Part::Xcv200.to_string(), "XCV200");
    }
}
