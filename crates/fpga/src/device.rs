//! The device: typed CLB/routing state kept in lock-step with the
//! configuration-memory bit image.
//!
//! All mutations go through configuration bits, in both directions:
//!
//! * typed mutators ([`Device::set_clb`], [`Device::add_pip`], …) update
//!   the typed model *and* write the corresponding configuration bits,
//!   returning the set of frames touched — the quantity the relocation
//!   cost model accounts;
//! * [`Device::write_frame`] (the path used by the bitstream/JTAG stack)
//!   writes raw frame data and incrementally re-decodes the affected typed
//!   resources, exactly as the silicon would.

use crate::cell::{LogicCell, CELL_CONFIG_BITS};
use crate::clb::{Clb, CELLS_PER_CLB};
use crate::config::layout::{
    self, cell_config_bit, frame_bit_owner, pip_config_bit, state_bit, PIP_BITS_BASE,
    STATE_BITS_BASE,
};
use crate::config::{ConfigMemory, Frame, FrameAddress, FrameWriteEffect};
use crate::error::FpgaError;
use crate::geom::{ClbCoord, Rect};
use crate::part::Part;
use crate::routing::{fixed_link, pip_exists, pip_table, Pip, RouteNode, Wire};
use std::collections::BTreeSet;

/// A Virtex-class device instance.
///
/// See the [crate-level documentation](crate) for an overview and example.
#[derive(Debug, Clone)]
pub struct Device {
    part: Part,
    clbs: Vec<Clb>,
    state: Vec<[bool; CELLS_PER_CLB]>,
    pips: BTreeSet<Pip>,
    config: ConfigMemory,
}

impl Device {
    /// A blank (unconfigured) device.
    pub fn new(part: Part) -> Self {
        let n = part.clb_count() as usize;
        Device {
            part,
            clbs: vec![Clb::default(); n],
            state: vec![[false; CELLS_PER_CLB]; n],
            pips: BTreeSet::new(),
            config: ConfigMemory::new(part),
        }
    }

    /// The part this device instantiates.
    pub fn part(&self) -> Part {
        self.part
    }

    /// CLB rows.
    pub fn rows(&self) -> u16 {
        self.part.clb_rows()
    }

    /// CLB columns.
    pub fn cols(&self) -> u16 {
        self.part.clb_cols()
    }

    /// The rectangle covering the whole CLB array.
    pub fn bounds(&self) -> Rect {
        Rect::new(ClbCoord::new(0, 0), self.rows(), self.cols())
    }

    /// Read-only view of the configuration memory.
    pub fn config(&self) -> &ConfigMemory {
        &self.config
    }

    fn idx(&self, coord: ClbCoord) -> Result<usize, FpgaError> {
        if coord.row >= self.rows() || coord.col >= self.cols() {
            return Err(FpgaError::OutOfBounds {
                coord,
                rows: self.rows(),
                cols: self.cols(),
            });
        }
        Ok(coord.row as usize * self.cols() as usize + coord.col as usize)
    }

    /// The CLB at `coord`.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::OutOfBounds`] if `coord` is outside the array.
    pub fn clb(&self, coord: ClbCoord) -> Result<&Clb, FpgaError> {
        Ok(&self.clbs[self.idx(coord)?])
    }

    /// Replaces the CLB configuration at `coord`, returning the frames
    /// whose content changed.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::OutOfBounds`] if `coord` is outside the array.
    pub fn set_clb(&mut self, coord: ClbCoord, clb: Clb) -> Result<Vec<FrameAddress>, FpgaError> {
        let idx = self.idx(coord)?;
        let mut touched = BTreeSet::new();
        for (cell_idx, cell) in clb.cells.iter().enumerate() {
            let bits = cell.encode();
            for (bit_idx, bit) in bits.iter().enumerate() {
                let (addr, offset) = cell_config_bit(coord, cell_idx, bit_idx);
                if self.config.set_bit(addr, offset, *bit)? {
                    touched.insert(addr);
                }
            }
        }
        self.clbs[idx] = clb;
        Ok(touched.into_iter().collect())
    }

    /// Configures one logic cell, leaving the CLB's other cells untouched.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::OutOfBounds`] if `coord` is outside the array.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= 4`.
    pub fn set_cell(
        &mut self,
        coord: ClbCoord,
        cell: usize,
        config: LogicCell,
    ) -> Result<Vec<FrameAddress>, FpgaError> {
        assert!(cell < CELLS_PER_CLB, "cell index {cell} out of range");
        let mut clb = *self.clb(coord)?;
        clb.cells[cell] = config;
        self.set_clb(coord, clb)
    }

    /// The stored value of a cell's storage element.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::OutOfBounds`] if `coord` is outside the array.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= 4`.
    pub fn cell_state(&self, coord: ClbCoord, cell: usize) -> Result<bool, FpgaError> {
        assert!(cell < CELLS_PER_CLB, "cell index {cell} out of range");
        Ok(self.state[self.idx(coord)?][cell])
    }

    /// Sets a cell's storage-element value (simulator write-through and the
    /// relocation state-capture path). Mirrored into the configuration
    /// memory's state bit, as Virtex frames capture FF state.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::OutOfBounds`] if `coord` is outside the array.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= 4`.
    pub fn set_cell_state(
        &mut self,
        coord: ClbCoord,
        cell: usize,
        value: bool,
    ) -> Result<(), FpgaError> {
        assert!(cell < CELLS_PER_CLB, "cell index {cell} out of range");
        let idx = self.idx(coord)?;
        self.state[idx][cell] = value;
        let (addr, offset) = state_bit(coord, cell);
        self.config.set_bit(addr, offset, value)?;
        Ok(())
    }

    /// True if `pip` is currently active.
    pub fn has_pip(&self, pip: &Pip) -> bool {
        self.pips.contains(pip)
    }

    /// Activates a PIP, returning the frames touched (empty if the PIP was
    /// already active).
    ///
    /// Multiple PIPs may drive the same wire — the paper's relocation
    /// deliberately parallels drivers; disagreement between parallel
    /// drivers is detected by the simulator, not forbidden structurally.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::OutOfBounds`] for tiles outside the array and
    /// [`FpgaError::BadFrameAddress`] if the (from, to) pair is not in the
    /// switch pattern.
    pub fn add_pip(&mut self, pip: Pip) -> Result<Vec<FrameAddress>, FpgaError> {
        self.idx(pip.tile)?;
        if !pip_exists(pip.from, pip.to) {
            return Err(FpgaError::BadFrameAddress {
                detail: format!("no such pip in switch pattern: {pip}"),
            });
        }
        if !self.pips.insert(pip) {
            return Ok(Vec::new());
        }
        let (addr, offset) = pip_config_bit(&pip).expect("pip_exists implies a config bit");
        self.config.set_bit(addr, offset, true)?;
        Ok(vec![addr])
    }

    /// Deactivates a PIP, returning the frames touched.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::PipNotActive`] if the PIP is not currently
    /// active.
    pub fn remove_pip(&mut self, pip: &Pip) -> Result<Vec<FrameAddress>, FpgaError> {
        if !self.pips.remove(pip) {
            return Err(FpgaError::PipNotActive {
                detail: pip.to_string(),
            });
        }
        let (addr, offset) = pip_config_bit(pip).expect("active pip must have a config bit");
        self.config.set_bit(addr, offset, false)?;
        Ok(vec![addr])
    }

    /// All active PIPs.
    pub fn pips(&self) -> impl Iterator<Item = &Pip> {
        self.pips.iter()
    }

    /// Active PIPs within one tile.
    pub fn pips_in_tile(&self, tile: ClbCoord) -> impl Iterator<Item = &Pip> {
        self.pips.iter().filter(move |p| p.tile == tile)
    }

    /// Active PIPs that drive `node`'s wire.
    pub fn pips_driving(&self, node: RouteNode) -> Vec<Pip> {
        self.pips
            .iter()
            .filter(|p| p.tile == node.tile && p.to == node.wire)
            .copied()
            .collect()
    }

    /// Active PIPs that listen to `node`'s wire.
    pub fn pips_from(&self, node: RouteNode) -> Vec<Pip> {
        self.pips
            .iter()
            .filter(|p| p.tile == node.tile && p.from == node.wire)
            .copied()
            .collect()
    }

    /// Every routing node reachable downstream of `start` through active
    /// PIPs and fixed segment links (the physical extent of the net driven
    /// from `start`).
    pub fn trace_downstream(&self, start: RouteNode) -> BTreeSet<RouteNode> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(node) = stack.pop() {
            if !seen.insert(node) {
                continue;
            }
            for pip in self.pips_from(node) {
                stack.push(pip.to_node());
            }
            if let Some(next) = fixed_link(node.tile, node.wire, self.rows(), self.cols()) {
                stack.push(next);
            }
        }
        seen
    }

    /// The logic-cell input pins (as route nodes) reached by the net
    /// driven from `start`.
    pub fn sinks_of(&self, start: RouteNode) -> Vec<RouteNode> {
        self.trace_downstream(start)
            .into_iter()
            .filter(|n| matches!(n.wire, Wire::CellIn(_, _) | Wire::CellCe(_)))
            .collect()
    }

    /// Reads a configuration frame (readback path).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BadFrameAddress`] for addresses outside the
    /// part.
    pub fn read_frame(&self, addr: FrameAddress) -> Result<Frame, FpgaError> {
        self.config.read_frame(addr)
    }

    /// Writes a configuration frame and re-decodes the typed resources the
    /// changed bits control — the path exercised by the bitstream/JTAG
    /// stack.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BadFrameAddress`] or
    /// [`FpgaError::FrameLengthMismatch`] as appropriate.
    pub fn write_frame(
        &mut self,
        addr: FrameAddress,
        frame: Frame,
    ) -> Result<FrameWriteEffect, FpgaError> {
        let effect = self.config.write_frame(addr, frame)?;
        let mut dirty_cells: BTreeSet<(ClbCoord, usize)> = BTreeSet::new();
        for &bit in &effect.changed_bits {
            let Some((tile, k)) = frame_bit_owner(self.part, addr, bit) else {
                continue;
            };
            if k < STATE_BITS_BASE {
                dirty_cells.insert((tile, k / CELL_CONFIG_BITS));
            } else if k < PIP_BITS_BASE {
                let cell = k - STATE_BITS_BASE;
                let value = self.config.get_bit(addr, bit)?;
                let idx = self.idx(tile)?;
                self.state[idx][cell] = value;
            } else {
                let pip_idx = k - PIP_BITS_BASE;
                if let Some(&(from, to)) = pip_table().get(pip_idx) {
                    let pip = Pip::new(tile, from, to);
                    let value = self.config.get_bit(addr, bit)?;
                    if value {
                        self.pips.insert(pip);
                    } else {
                        self.pips.remove(&pip);
                    }
                }
            }
        }
        for (tile, cell) in dirty_cells {
            let decoded = self.decode_cell_from_config(tile, cell)?;
            let idx = self.idx(tile)?;
            self.clbs[idx].cells[cell] = decoded;
        }
        Ok(effect)
    }

    fn decode_cell_from_config(&self, tile: ClbCoord, cell: usize) -> Result<LogicCell, FpgaError> {
        let mut bits = [false; CELL_CONFIG_BITS];
        for (i, slot) in bits.iter_mut().enumerate() {
            let (addr, offset) = cell_config_bit(tile, cell, i);
            *slot = self.config.get_bit(addr, offset)?;
        }
        Ok(LogicCell::decode(&bits))
    }

    /// The frames a full copy of `coord`'s CLB configuration must write
    /// (the cell-configuration minors of the tile's column).
    pub fn clb_config_frames(&self, coord: ClbCoord) -> Vec<FrameAddress> {
        layout::clb_config_minors()
            .map(|m| FrameAddress::clb(coord.col, m))
            .collect()
    }

    /// Rectangular region occupancy: CLB coordinates in `rect` whose CLB is
    /// configured.
    pub fn used_in(&self, rect: Rect) -> Vec<ClbCoord> {
        rect.iter()
            .filter(|c| self.clb(*c).map(|clb| clb.is_used()).unwrap_or(false))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::Lut;
    use crate::routing::Dir;

    fn small() -> Device {
        Device::new(Part::Xcv50)
    }

    #[test]
    fn blank_device_is_empty() {
        let dev = small();
        assert_eq!(dev.rows(), 16);
        assert_eq!(dev.cols(), 24);
        assert!(!dev.clb(ClbCoord::new(0, 0)).unwrap().is_used());
        assert_eq!(dev.pips().count(), 0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let dev = small();
        assert!(dev.clb(ClbCoord::new(16, 0)).is_err());
        assert!(dev.clb(ClbCoord::new(0, 24)).is_err());
    }

    #[test]
    fn set_clb_roundtrips_through_config() {
        let mut dev = small();
        let coord = ClbCoord::new(4, 9);
        let mut clb = Clb::default();
        clb.cells[1].lut = Lut::from_bits(0xCAFE);
        clb.cells[1].registered_output = true;
        let touched = dev.set_clb(coord, clb).unwrap();
        assert!(!touched.is_empty());
        assert_eq!(dev.clb(coord).unwrap(), &clb);
        // All touched frames are in the tile's column.
        for addr in &touched {
            assert_eq!(addr.major, 9);
        }
        // Idempotent: rewriting the same CLB touches nothing.
        assert!(dev.set_clb(coord, clb).unwrap().is_empty());
    }

    #[test]
    fn frame_write_decodes_clb() {
        let mut dev = small();
        let coord = ClbCoord::new(2, 3);
        let mut clb = Clb::default();
        clb.cells[0].lut = Lut::from_bits(0xAAAA);
        dev.set_clb(coord, clb).unwrap();

        // Copy the configuration through raw frames to another device.
        let mut dev2 = small();
        for minor in 0..48 {
            let addr = FrameAddress::clb(3, minor);
            let frame = dev.read_frame(addr).unwrap();
            dev2.write_frame(addr, frame).unwrap();
        }
        assert_eq!(dev2.clb(coord).unwrap(), &clb);
    }

    #[test]
    fn pip_add_remove_roundtrip() {
        let mut dev = small();
        let pip = Pip::new(
            ClbCoord::new(1, 1),
            Wire::CellOut(0),
            Wire::Out(Dir::East, 0),
        );
        let touched = dev.add_pip(pip).unwrap();
        assert_eq!(touched.len(), 1);
        assert!(dev.has_pip(&pip));
        assert!(dev.add_pip(pip).unwrap().is_empty(), "re-adding is a no-op");
        dev.remove_pip(&pip).unwrap();
        assert!(!dev.has_pip(&pip));
        assert!(dev.remove_pip(&pip).is_err());
    }

    #[test]
    fn invalid_pip_rejected() {
        let mut dev = small();
        let bad = Pip::new(ClbCoord::new(0, 0), Wire::CellIn(0, 0), Wire::CellOut(0));
        assert!(dev.add_pip(bad).is_err());
    }

    #[test]
    fn frame_write_decodes_pip() {
        let mut dev = small();
        let pip = Pip::new(
            ClbCoord::new(5, 7),
            Wire::CellOut(1),
            Wire::Out(Dir::North, 1),
        );
        dev.add_pip(pip).unwrap();
        let (addr, _) = crate::config::layout::pip_config_bit(&pip).unwrap();
        let frame = dev.read_frame(addr).unwrap();

        let mut dev2 = small();
        dev2.write_frame(addr, frame).unwrap();
        assert!(dev2.has_pip(&pip));
    }

    #[test]
    fn trace_follows_pips_and_segments() {
        let mut dev = small();
        let src_tile = ClbCoord::new(3, 3);
        let dst_tile = ClbCoord::new(3, 4);
        // cell0 output -> east single 0 -> next tile -> cell0 input pin
        dev.add_pip(Pip::new(
            src_tile,
            Wire::CellOut(0),
            Wire::Out(Dir::East, 0),
        ))
        .unwrap();
        // In(West, 0) arrives at dst; pattern allows CellIn(c, p) with
        // p == (0 + c) % 4 or (0 + c + 1) % 4 -> for c=0: p 0 or 1.
        dev.add_pip(Pip::new(
            dst_tile,
            Wire::In(Dir::West, 0),
            Wire::CellIn(0, 0),
        ))
        .unwrap();
        let sinks = dev.sinks_of(RouteNode::new(src_tile, Wire::CellOut(0)));
        assert_eq!(sinks, vec![RouteNode::new(dst_tile, Wire::CellIn(0, 0))]);
    }

    #[test]
    fn state_mirrors_into_config() {
        let mut dev = small();
        let coord = ClbCoord::new(8, 8);
        dev.set_cell_state(coord, 2, true).unwrap();
        assert!(dev.cell_state(coord, 2).unwrap());
        let (addr, bit) = state_bit(coord, 2);
        assert!(dev.config().get_bit(addr, bit).unwrap());

        // And the frame path propagates state back into the typed model.
        let frame = dev.read_frame(addr).unwrap();
        let mut dev2 = small();
        dev2.write_frame(addr, frame).unwrap();
        assert!(dev2.cell_state(coord, 2).unwrap());
    }

    #[test]
    fn multiple_drivers_allowed_and_queryable() {
        let mut dev = small();
        let tile = ClbCoord::new(2, 2);
        let node = RouteNode::new(tile, Wire::Out(Dir::South, 1));
        dev.add_pip(Pip::new(tile, Wire::CellOut(0), Wire::Out(Dir::South, 1)))
            .unwrap();
        dev.add_pip(Pip::new(tile, Wire::CellOut(1), Wire::Out(Dir::South, 1)))
            .unwrap();
        assert_eq!(dev.pips_driving(node).len(), 2);
    }

    #[test]
    fn used_in_reports_occupancy() {
        let mut dev = small();
        let mut clb = Clb::default();
        clb.cells[0].lut = Lut::constant(true);
        dev.set_clb(ClbCoord::new(1, 1), clb).unwrap();
        let used = dev.used_in(Rect::new(ClbCoord::new(0, 0), 4, 4));
        assert_eq!(used, vec![ClbCoord::new(1, 1)]);
    }
}
