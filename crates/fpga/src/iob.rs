//! Input/Output Blocks: the periphery ring.
//!
//! The model keeps IOBs simple — the paper's mechanism never relocates
//! IOBs, but the device's external pins are where benchmark circuits attach
//! their primary inputs and outputs, and IOB columns contribute frames to
//! the configuration size.

use crate::geom::ClbCoord;
use crate::routing::{Dir, Wire};
use std::fmt;

/// Which edge of the array an IOB sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IobSide {
    /// Above row 0.
    Top,
    /// Right of the last column.
    Right,
    /// Below the last row.
    Bottom,
    /// Left of column 0.
    Left,
}

impl IobSide {
    /// All four sides.
    pub const ALL: [IobSide; 4] = [IobSide::Top, IobSide::Right, IobSide::Bottom, IobSide::Left];

    /// The direction from the adjacent CLB tile toward this edge.
    pub fn outward(self) -> Dir {
        match self {
            IobSide::Top => Dir::North,
            IobSide::Right => Dir::East,
            IobSide::Bottom => Dir::South,
            IobSide::Left => Dir::West,
        }
    }
}

impl fmt::Display for IobSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IobSide::Top => "T",
            IobSide::Right => "R",
            IobSide::Bottom => "B",
            IobSide::Left => "L",
        };
        f.write_str(s)
    }
}

/// An I/O block location: edge + index along that edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IobCoord {
    /// The edge.
    pub side: IobSide,
    /// Index along the edge (row index for Left/Right, column index for
    /// Top/Bottom).
    pub index: u16,
}

impl IobCoord {
    /// Creates an IOB coordinate.
    pub fn new(side: IobSide, index: u16) -> Self {
        IobCoord { side, index }
    }

    /// The CLB tile adjacent to this IOB on a `rows`×`cols` array.
    pub fn adjacent_tile(self, rows: u16, cols: u16) -> ClbCoord {
        match self.side {
            IobSide::Top => ClbCoord::new(0, self.index.min(cols - 1)),
            IobSide::Bottom => ClbCoord::new(rows - 1, self.index.min(cols - 1)),
            IobSide::Left => ClbCoord::new(self.index.min(rows - 1), 0),
            IobSide::Right => ClbCoord::new(self.index.min(rows - 1), cols - 1),
        }
    }

    /// The tile wire an *input* pad drives: the inbound single 0 from the
    /// edge side of the adjacent tile.
    pub fn pad_input_wire(self) -> Wire {
        Wire::In(self.side.outward(), 0)
    }

    /// The tile wire an *output* pad listens to: the outbound single 0
    /// toward the edge.
    pub fn pad_output_wire(self) -> Wire {
        Wire::Out(self.side.outward(), 0)
    }
}

impl fmt::Display for IobCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IOB{}{}", self.side, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_tiles_on_edges() {
        let (rows, cols) = (28, 42);
        assert_eq!(
            IobCoord::new(IobSide::Top, 5).adjacent_tile(rows, cols),
            ClbCoord::new(0, 5)
        );
        assert_eq!(
            IobCoord::new(IobSide::Bottom, 5).adjacent_tile(rows, cols),
            ClbCoord::new(27, 5)
        );
        assert_eq!(
            IobCoord::new(IobSide::Left, 9).adjacent_tile(rows, cols),
            ClbCoord::new(9, 0)
        );
        assert_eq!(
            IobCoord::new(IobSide::Right, 9).adjacent_tile(rows, cols),
            ClbCoord::new(9, 41)
        );
    }

    #[test]
    fn index_clamped_to_array() {
        let t = IobCoord::new(IobSide::Top, 999).adjacent_tile(4, 4);
        assert_eq!(t, ClbCoord::new(0, 3));
    }

    #[test]
    fn pad_wires_point_outward() {
        let iob = IobCoord::new(IobSide::Left, 3);
        assert_eq!(iob.pad_input_wire(), Wire::In(Dir::West, 0));
        assert_eq!(iob.pad_output_wire(), Wire::Out(Dir::West, 0));
    }
}
