//! Error type for device-model operations.

use crate::geom::ClbCoord;
use std::fmt;

/// Errors raised by the FPGA device model.
///
/// ```
/// use rtm_fpga::FpgaError;
/// use rtm_fpga::geom::ClbCoord;
/// let err = FpgaError::OutOfBounds { coord: ClbCoord::new(99, 99), rows: 28, cols: 42 };
/// assert!(err.to_string().contains("out of bounds"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FpgaError {
    /// A CLB coordinate fell outside the device array.
    OutOfBounds {
        /// The offending coordinate.
        coord: ClbCoord,
        /// Device row count.
        rows: u16,
        /// Device column count.
        cols: u16,
    },
    /// A frame address does not exist on this part.
    BadFrameAddress {
        /// Human-readable description of the address.
        detail: String,
    },
    /// An attempt to activate a PIP whose destination wire is already driven.
    WireConflict {
        /// Description of the conflicting wire.
        detail: String,
    },
    /// An attempt to deactivate a PIP that is not active.
    PipNotActive {
        /// Description of the missing PIP.
        detail: String,
    },
    /// A frame payload did not match the part's frame length.
    FrameLengthMismatch {
        /// Expected number of bits.
        expected: usize,
        /// Provided number of bits.
        actual: usize,
    },
    /// Operation requires a LUT in logic mode but it is configured as RAM.
    LutInRamMode {
        /// Location of the offending cell.
        coord: ClbCoord,
        /// Cell index within the CLB (0–3).
        cell: usize,
    },
}

impl fmt::Display for FpgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpgaError::OutOfBounds { coord, rows, cols } => write!(
                f,
                "clb coordinate {coord} out of bounds for {rows}x{cols} array"
            ),
            FpgaError::BadFrameAddress { detail } => {
                write!(f, "invalid frame address: {detail}")
            }
            FpgaError::WireConflict { detail } => {
                write!(f, "wire already driven: {detail}")
            }
            FpgaError::PipNotActive { detail } => {
                write!(f, "pip not active: {detail}")
            }
            FpgaError::FrameLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "frame length mismatch: expected {expected} bits, got {actual}"
                )
            }
            FpgaError::LutInRamMode { coord, cell } => {
                write!(f, "lut at {coord} cell {cell} is in distributed-RAM mode")
            }
        }
    }
}

impl std::error::Error for FpgaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = [
            FpgaError::OutOfBounds {
                coord: ClbCoord::new(1, 2),
                rows: 4,
                cols: 4,
            },
            FpgaError::BadFrameAddress { detail: "x".into() },
            FpgaError::WireConflict { detail: "w".into() },
            FpgaError::PipNotActive { detail: "p".into() },
            FpgaError::FrameLengthMismatch {
                expected: 10,
                actual: 9,
            },
            FpgaError::LutInRamMode {
                coord: ClbCoord::new(0, 0),
                cell: 1,
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FpgaError>();
    }
}
