//! The configurable routing fabric: wires, PIPs and the switch pattern.
//!
//! The model follows the Virtex style at the level of detail the paper's
//! mechanism needs:
//!
//! * every CLB tile owns a set of **wires** — cell pins, *single* lines
//!   (span one tile) and *hex* lines (span six tiles) in each direction;
//! * a **PIP** (programmable interconnect point) is a configurable
//!   connection between two wires of the same tile, closed by one bit of
//!   the tile's configuration column;
//! * wires leaving a tile arrive at a fixed offset in a neighbouring tile
//!   (a *fixed link*, not configurable).
//!
//! The exact Virtex PIP set is undocumented; we use a deterministic sparse
//! switch pattern (see [`pip_table`]) sized to fit the published per-column
//! frame budget. This preserves the properties the paper depends on:
//! scarcity of routing, multi-column spans of nets, and per-PIP
//! configuration bits that can be written frame-by-frame.

use crate::geom::ClbCoord;
use std::fmt;
use std::sync::OnceLock;

/// Singles per direction per tile.
pub const SINGLES_PER_DIR: u8 = 8;
/// Hex lines per direction per tile.
pub const HEX_PER_DIR: u8 = 4;
/// Tiles spanned by a hex line.
pub const HEX_SPAN: u16 = 6;

/// Propagation delay of one PIP (switch) in picoseconds.
pub const PIP_DELAY_PS: u64 = 120;
/// Propagation delay of one single-line segment in picoseconds.
pub const SINGLE_DELAY_PS: u64 = 350;
/// Propagation delay of one hex-line segment (six tiles) in picoseconds.
pub const HEX_DELAY_PS: u64 = 800;
/// Delay through a LUT, in picoseconds.
pub const LUT_DELAY_PS: u64 = 460;

/// A compass direction in the CLB array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dir {
    /// Toward row 0.
    North,
    /// Toward higher columns.
    East,
    /// Toward higher rows.
    South,
    /// Toward column 0.
    West,
}

impl Dir {
    /// All four directions in index order.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];

    /// Index 0..4 used by the configuration layout.
    pub fn index(self) -> usize {
        match self {
            Dir::North => 0,
            Dir::East => 1,
            Dir::South => 2,
            Dir::West => 3,
        }
    }

    /// The opposite direction.
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::East => Dir::West,
            Dir::South => Dir::North,
            Dir::West => Dir::East,
        }
    }

    /// Row/column step of one tile in this direction.
    pub fn step(self) -> (i32, i32) {
        match self {
            Dir::North => (-1, 0),
            Dir::East => (0, 1),
            Dir::South => (1, 0),
            Dir::West => (0, -1),
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir::North => "N",
            Dir::East => "E",
            Dir::South => "S",
            Dir::West => "W",
        };
        f.write_str(s)
    }
}

/// A wire within one CLB tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Wire {
    /// Output of logic cell `0..4`.
    CellOut(u8),
    /// Input pin of a logic cell: `(cell 0..4, pin 0..4)`.
    CellIn(u8, u8),
    /// Clock-enable input of logic cell `0..4`.
    CellCe(u8),
    /// Direct flip-flop data (bypass) input of logic cell `0..4` — used
    /// when the cell's `d_bypass` configuration bit routes the storage
    /// element's D from the fabric instead of the LUT (the path the
    /// paper's auxiliary relocation circuit feeds, Fig. 3).
    CellDx(u8),
    /// Single line leaving the tile toward `Dir`, index `0..SINGLES_PER_DIR`.
    Out(Dir, u8),
    /// Single line entering the tile from the `Dir` side.
    In(Dir, u8),
    /// Hex line leaving toward `Dir`, index `0..HEX_PER_DIR`.
    HexOut(Dir, u8),
    /// Hex line entering from the `Dir` side.
    HexIn(Dir, u8),
}

/// Total distinct wires per tile.
pub const WIRE_COUNT: usize = 4 + 16 + 4 + 32 + 32 + 16 + 16 + 4;

impl Wire {
    /// Dense index `0..WIRE_COUNT` for table lookups and config layout.
    pub fn index(self) -> usize {
        match self {
            Wire::CellOut(c) => c as usize,
            Wire::CellIn(c, p) => 4 + c as usize * 4 + p as usize,
            Wire::CellCe(c) => 20 + c as usize,
            Wire::Out(d, i) => 24 + d.index() * 8 + i as usize,
            Wire::In(d, i) => 56 + d.index() * 8 + i as usize,
            Wire::HexOut(d, i) => 88 + d.index() * 4 + i as usize,
            Wire::HexIn(d, i) => 104 + d.index() * 4 + i as usize,
            Wire::CellDx(c) => 120 + c as usize,
        }
    }

    /// Inverse of [`Wire::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= WIRE_COUNT`.
    pub fn from_index(idx: usize) -> Wire {
        match idx {
            0..=3 => Wire::CellOut(idx as u8),
            4..=19 => Wire::CellIn(((idx - 4) / 4) as u8, ((idx - 4) % 4) as u8),
            20..=23 => Wire::CellCe((idx - 20) as u8),
            24..=55 => Wire::Out(Dir::ALL[(idx - 24) / 8], ((idx - 24) % 8) as u8),
            56..=87 => Wire::In(Dir::ALL[(idx - 56) / 8], ((idx - 56) % 8) as u8),
            88..=103 => Wire::HexOut(Dir::ALL[(idx - 88) / 4], ((idx - 88) % 4) as u8),
            104..=119 => Wire::HexIn(Dir::ALL[(idx - 104) / 4], ((idx - 104) % 4) as u8),
            120..=123 => Wire::CellDx((idx - 120) as u8),
            _ => panic!("wire index {idx} out of range"),
        }
    }

    /// All wires of one tile.
    pub fn all() -> impl Iterator<Item = Wire> {
        (0..WIRE_COUNT).map(Wire::from_index)
    }

    /// Delay contributed by driving onto this wire, in picoseconds.
    pub fn segment_delay_ps(self) -> u64 {
        match self {
            Wire::Out(_, _) | Wire::In(_, _) => SINGLE_DELAY_PS,
            Wire::HexOut(_, _) | Wire::HexIn(_, _) => HEX_DELAY_PS,
            _ => 0,
        }
    }

    /// True if the wire is a cell pin (not fabric).
    pub fn is_cell_pin(self) -> bool {
        matches!(
            self,
            Wire::CellOut(_) | Wire::CellIn(_, _) | Wire::CellCe(_) | Wire::CellDx(_)
        )
    }
}

impl fmt::Display for Wire {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Wire::CellOut(c) => write!(f, "O{c}"),
            Wire::CellIn(c, p) => write!(f, "I{c}.{p}"),
            Wire::CellCe(c) => write!(f, "CE{c}"),
            Wire::Out(d, i) => write!(f, "{d}OUT{i}"),
            Wire::In(d, i) => write!(f, "{d}IN{i}"),
            Wire::HexOut(d, i) => write!(f, "{d}HEXOUT{i}"),
            Wire::HexIn(d, i) => write!(f, "{d}HEXIN{i}"),
            Wire::CellDx(c) => write!(f, "DX{c}"),
        }
    }
}

/// A wire at a specific tile — a node of the device-wide routing graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouteNode {
    /// The tile.
    pub tile: ClbCoord,
    /// The wire within the tile.
    pub wire: Wire,
}

impl RouteNode {
    /// Creates a node.
    pub fn new(tile: ClbCoord, wire: Wire) -> Self {
        RouteNode { tile, wire }
    }
}

impl fmt::Display for RouteNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.tile, self.wire)
    }
}

/// A programmable interconnect point: a configurable connection from
/// `from` to `to` within `tile`'s switch matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pip {
    /// The tile whose switch matrix contains this PIP.
    pub tile: ClbCoord,
    /// Source wire.
    pub from: Wire,
    /// Destination wire (the wire this PIP drives).
    pub to: Wire,
}

impl Pip {
    /// Creates a PIP.
    pub fn new(tile: ClbCoord, from: Wire, to: Wire) -> Self {
        Pip { tile, from, to }
    }

    /// The graph node this PIP drives.
    pub fn to_node(&self) -> RouteNode {
        RouteNode::new(self.tile, self.to)
    }

    /// The graph node this PIP listens to.
    pub fn from_node(&self) -> RouteNode {
        RouteNode::new(self.tile, self.from)
    }
}

impl fmt::Display for Pip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}->{}", self.tile, self.from, self.to)
    }
}

/// The switch pattern: returns true if a PIP from `from` to `to` exists in
/// every tile's switch matrix.
///
/// The pattern is sparse and deterministic, sized so that the per-tile PIP
/// count fits the configuration-column bit budget (see
/// [`crate::config::layout`]).
pub fn pip_exists(from: Wire, to: Wire) -> bool {
    use Wire::*;
    match (from, to) {
        // Cell outputs drive half the singles of every direction.
        (CellOut(c), Out(_, i)) => i % 4 == c || i % 4 == (c + 1) % 4,
        // Cell outputs drive the matching hex line of every direction.
        (CellOut(c), HexOut(_, i)) => i == c,
        // Direct feedback: any cell output to any cell input of the tile.
        (CellOut(_), CellIn(_, _)) => true,
        // Direct connects to the control pins of the tile's cells
        // (Virtex-style direct-connect resources).
        (CellOut(_), CellCe(_)) => true,
        (CellOut(_), CellDx(_)) => true,
        // Incoming singles sink into cell inputs (rotated pin pattern).
        (In(_, i), CellIn(c, p)) => p == (i + c) % 4,
        // Incoming single 0 of each side drives any cell's CE.
        (In(_, i), CellCe(_)) => i == 0,
        // One incoming single per side reaches each cell's FF bypass
        // input: single 2 for even cells, single 6 for odd cells.
        (In(_, i), CellDx(c)) => i == 2 + 4 * (c % 2),
        // Switch-matrix pass-through: index-preserving plus one twisted
        // alternative, to any direction except a U-turn. A wire entering
        // from side `d` was traveling toward `d.opposite()`; exiting back
        // toward `d` would be the U-turn.
        (In(d, i), Out(d2, j)) => d2 != d && (j == i || j == (i + 3) % 8),
        // Hex to singles fan-out (no U-turn).
        (HexIn(d, i), Out(d2, j)) => d2 != d && (j == i * 2 || j == i * 2 + 1),
        // Hex continuation (no U-turn).
        (HexIn(d, i), HexOut(d2, j)) => d2 != d && j == i,
        // Singles 0/4 onto hex line 0 (no U-turn).
        (In(d, i), HexOut(d2, j)) => d2 != d && j == i % 4 && i % 4 == 0,
        // Hex lines sink into cell inputs.
        (HexIn(_, i), CellIn(c, p)) => p == (i + c) % 4,
        _ => false,
    }
}

/// The full ordered table of valid per-tile PIPs.
///
/// The order is the configuration-bit order: PIP `k` of a tile maps to
/// tile-local routing configuration bit `k`.
pub fn pip_table() -> &'static [(Wire, Wire)] {
    static TABLE: OnceLock<Vec<(Wire, Wire)>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut v = Vec::new();
        for from in Wire::all() {
            for to in Wire::all() {
                if pip_exists(from, to) {
                    v.push((from, to));
                }
            }
        }
        v
    })
}

/// Index of a (from, to) pair within [`pip_table`], if the PIP exists.
pub fn pip_bit_index(from: Wire, to: Wire) -> Option<usize> {
    static INDEX: OnceLock<std::collections::HashMap<(Wire, Wire), usize>> = OnceLock::new();
    let map = INDEX.get_or_init(|| {
        pip_table()
            .iter()
            .enumerate()
            .map(|(i, p)| (*p, i))
            .collect()
    });
    map.get(&(from, to)).copied()
}

/// Direction, wire index, hop span and the in/outbound wire constructor
/// of a fixed link, destructured from a [`Wire`].
type LinkParts = (Dir, u8, u16, fn(Dir, u8) -> Wire);

/// Where a fabric wire leaving one tile arrives, given the device
/// dimensions. Returns `None` for cell pins, for inbound wires, and at the
/// array edge.
///
/// ```
/// use rtm_fpga::routing::{fixed_link, Wire, Dir};
/// use rtm_fpga::geom::ClbCoord;
/// let dst = fixed_link(ClbCoord::new(5, 5), Wire::Out(Dir::North, 2), 28, 42);
/// assert_eq!(dst.unwrap().tile, ClbCoord::new(4, 5));
/// assert_eq!(dst.unwrap().wire, Wire::In(Dir::South, 2));
/// ```
pub fn fixed_link(tile: ClbCoord, wire: Wire, rows: u16, cols: u16) -> Option<RouteNode> {
    let (dir, idx, span, inbound): LinkParts = match wire {
        Wire::Out(d, i) => (d, i, 1, Wire::In),
        Wire::HexOut(d, i) => (d, i, HEX_SPAN, Wire::HexIn),
        _ => return None,
    };
    let (dr, dc) = dir.step();
    let dest = tile.offset(dr * span as i32, dc * span as i32)?;
    if dest.row >= rows || dest.col >= cols {
        return None;
    }
    Some(RouteNode::new(dest, inbound(dir.opposite(), idx)))
}

/// Reverse of [`fixed_link`]: the outbound wire (at another tile) that
/// feeds an inbound wire, if any.
pub fn fixed_link_rev(tile: ClbCoord, wire: Wire, rows: u16, cols: u16) -> Option<RouteNode> {
    let (dir, idx, span, outbound): LinkParts = match wire {
        Wire::In(d, i) => (d, i, 1, Wire::Out),
        Wire::HexIn(d, i) => (d, i, HEX_SPAN, Wire::HexOut),
        _ => return None,
    };
    // The wire entered from side `dir`, so its source tile lies toward `dir`.
    let (dr, dc) = dir.step();
    let src = tile.offset(dr * span as i32, dc * span as i32)?;
    if src.row >= rows || src.col >= cols {
        return None;
    }
    Some(RouteNode::new(src, outbound(dir.opposite(), idx)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_index_roundtrip() {
        for idx in 0..WIRE_COUNT {
            let w = Wire::from_index(idx);
            assert_eq!(w.index(), idx, "wire {w} index mismatch");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn wire_from_bad_index_panics() {
        let _ = Wire::from_index(WIRE_COUNT);
    }

    #[test]
    fn pip_table_fits_frame_budget() {
        let n = pip_table().len();
        // See config::layout: routing bits per tile must fit under 764.
        assert!(n > 200, "switch pattern suspiciously small: {n}");
        assert!(
            n <= 764,
            "switch pattern exceeds per-tile frame budget: {n}"
        );
    }

    #[test]
    fn pip_bit_index_matches_table() {
        let table = pip_table();
        for (i, (f, t)) in table.iter().enumerate() {
            assert_eq!(pip_bit_index(*f, *t), Some(i));
        }
        assert_eq!(pip_bit_index(Wire::CellIn(0, 0), Wire::CellOut(0)), None);
    }

    #[test]
    fn no_pip_drives_a_cell_output() {
        for (_, to) in pip_table() {
            assert!(
                !matches!(to, Wire::CellOut(_)),
                "cell outputs are driven by the cell"
            );
        }
    }

    #[test]
    fn fixed_links_are_inverses() {
        let (rows, cols) = (28, 42);
        let tile = ClbCoord::new(10, 10);
        for wire in Wire::all() {
            if let Some(dst) = fixed_link(tile, wire, rows, cols) {
                let back = fixed_link_rev(dst.tile, dst.wire, rows, cols)
                    .expect("reverse link must exist");
                assert_eq!(back.tile, tile);
                assert_eq!(back.wire, wire);
            }
        }
    }

    #[test]
    fn fixed_link_stops_at_edges() {
        assert!(fixed_link(ClbCoord::new(0, 0), Wire::Out(Dir::North, 0), 28, 42).is_none());
        assert!(fixed_link(ClbCoord::new(0, 0), Wire::Out(Dir::West, 0), 28, 42).is_none());
        assert!(fixed_link(ClbCoord::new(27, 41), Wire::Out(Dir::South, 0), 28, 42).is_none());
        assert!(fixed_link(ClbCoord::new(3, 0), Wire::HexOut(Dir::North, 0), 28, 42).is_none());
        assert!(fixed_link(ClbCoord::new(6, 0), Wire::HexOut(Dir::North, 0), 28, 42).is_some());
    }

    #[test]
    fn hex_spans_six_tiles() {
        let dst = fixed_link(ClbCoord::new(0, 0), Wire::HexOut(Dir::South, 1), 28, 42).unwrap();
        assert_eq!(dst.tile, ClbCoord::new(6, 0));
        assert_eq!(dst.wire, Wire::HexIn(Dir::North, 1));
    }

    #[test]
    fn every_cell_input_is_reachable() {
        // Each cell input pin must be drivable by at least one PIP,
        // otherwise placement would strand logic.
        for c in 0..4u8 {
            for p in 0..4u8 {
                let reachable = pip_table().iter().any(|(_, t)| *t == Wire::CellIn(c, p));
                assert!(reachable, "cell {c} pin {p} unreachable");
            }
            let ce = pip_table().iter().any(|(_, t)| *t == Wire::CellCe(c));
            assert!(ce, "cell {c} CE unreachable");
            let dx = pip_table().iter().any(|(_, t)| *t == Wire::CellDx(c));
            assert!(dx, "cell {c} bypass unreachable");
        }
    }

    #[test]
    fn pass_through_has_no_u_turn() {
        for (f, t) in pip_table() {
            if let (Wire::In(d, _), Wire::Out(d2, _)) = (f, t) {
                assert_ne!(*d2, *d, "U-turn pip {f}->{t}");
            }
        }
    }

    #[test]
    fn delays_are_positive_for_fabric() {
        assert!(Wire::Out(Dir::North, 0).segment_delay_ps() > 0);
        assert!(
            Wire::HexOut(Dir::East, 1).segment_delay_ps()
                > Wire::Out(Dir::East, 1).segment_delay_ps()
        );
        assert_eq!(Wire::CellOut(0).segment_delay_ps(), 0);
    }
}
