//! Configurable Logic Blocks: four logic cells with shared clocking.

use crate::cell::{LogicCell, CELL_CONFIG_BITS};
use std::fmt;

/// Number of logic cells per CLB (Virtex: two slices × two cells).
pub const CELLS_PER_CLB: usize = 4;

/// Configuration bits for a whole CLB in our frame layout.
pub const CLB_CONFIG_BITS: usize = CELLS_PER_CLB * CELL_CONFIG_BITS;

/// One Configurable Logic Block.
///
/// ```
/// use rtm_fpga::clb::Clb;
/// use rtm_fpga::lut::Lut;
///
/// let mut clb = Clb::default();
/// clb.cells[2].lut = Lut::constant(true);
/// assert!(clb.is_used());
/// assert_eq!(clb.used_cells().count(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Clb {
    /// The four logic cells.
    pub cells: [LogicCell; CELLS_PER_CLB],
}

impl Clb {
    /// An unconfigured CLB.
    pub fn new() -> Self {
        Clb::default()
    }

    /// True if any cell is configured.
    pub fn is_used(&self) -> bool {
        self.cells.iter().any(LogicCell::is_used)
    }

    /// Indices of cells that are configured.
    pub fn used_cells(&self) -> impl Iterator<Item = usize> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_used())
            .map(|(i, _)| i)
    }

    /// True if any cell holds sequential state.
    pub fn is_sequential(&self) -> bool {
        self.cells.iter().any(LogicCell::is_sequential)
    }

    /// True if any cell is in distributed-RAM mode (blocks on-line
    /// relocation, paper §2).
    pub fn has_ram(&self) -> bool {
        self.cells.iter().any(|c| c.ram_mode)
    }

    /// Encodes the CLB into `CLB_CONFIG_BITS` configuration bits.
    pub fn encode(&self) -> Vec<bool> {
        let mut out = Vec::with_capacity(CLB_CONFIG_BITS);
        for cell in &self.cells {
            out.extend_from_slice(&cell.encode());
        }
        out
    }

    /// Decodes a CLB from configuration bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != CLB_CONFIG_BITS`.
    pub fn decode(bits: &[bool]) -> Self {
        assert_eq!(bits.len(), CLB_CONFIG_BITS, "clb config length");
        let mut clb = Clb::default();
        for (i, chunk) in bits.chunks_exact(CELL_CONFIG_BITS).enumerate() {
            let mut arr = [false; CELL_CONFIG_BITS];
            arr.copy_from_slice(chunk);
            clb.cells[i] = LogicCell::decode(&arr);
        }
        clb
    }
}

impl fmt::Display for Clb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_used() {
            return f.write_str("CLB<empty>");
        }
        write!(f, "CLB<{} cells used>", self.used_cells().count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::Lut;
    use crate::storage::StorageKind;
    use proptest::prelude::*;

    #[test]
    fn empty_clb_properties() {
        let clb = Clb::new();
        assert!(!clb.is_used());
        assert!(!clb.is_sequential());
        assert!(!clb.has_ram());
        assert_eq!(clb.to_string(), "CLB<empty>");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut clb = Clb::default();
        clb.cells[0].lut = Lut::from_bits(0x1234);
        clb.cells[1].storage = StorageKind::FlipFlop;
        clb.cells[3].ram_mode = true;
        let bits = clb.encode();
        assert_eq!(bits.len(), CLB_CONFIG_BITS);
        assert_eq!(Clb::decode(&bits), clb);
    }

    #[test]
    fn ram_detection() {
        let mut clb = Clb::default();
        assert!(!clb.has_ram());
        clb.cells[2].ram_mode = true;
        assert!(clb.has_ram());
    }

    #[test]
    #[should_panic(expected = "clb config length")]
    fn decode_wrong_length_panics() {
        let _ = Clb::decode(&[false; 10]);
    }

    proptest! {
        #[test]
        fn roundtrip_random_luts(a in any::<u16>(), b in any::<u16>(),
                                 c in any::<u16>(), d in any::<u16>()) {
            let mut clb = Clb::default();
            clb.cells[0].lut = Lut::from_bits(a);
            clb.cells[1].lut = Lut::from_bits(b);
            clb.cells[2].lut = Lut::from_bits(c);
            clb.cells[3].lut = Lut::from_bits(d);
            prop_assert_eq!(Clb::decode(&clb.encode()), clb);
        }
    }
}
