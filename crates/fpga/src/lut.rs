//! 4-input look-up tables, the combinational element of a Virtex logic cell.

use std::fmt;

/// Number of inputs of a Virtex LUT.
pub const LUT_INPUTS: usize = 4;

/// Number of configuration bits in a 4-input LUT truth table.
pub const LUT_BITS: usize = 1 << LUT_INPUTS;

/// A 4-input look-up table holding a 16-bit truth table.
///
/// Bit `i` of the table is the output for the input vector whose binary
/// encoding is `i` (input 0 is the least-significant address bit).
///
/// ```
/// use rtm_fpga::lut::Lut;
/// // 2-input AND on inputs 0 and 1 (inputs 2,3 ignored).
/// let and2 = Lut::from_fn(|ins| ins[0] && ins[1]);
/// assert!(and2.eval([true, true, false, false]));
/// assert!(!and2.eval([true, false, false, false]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Lut {
    bits: u16,
}

impl Lut {
    /// A LUT computing constant `false`.
    pub fn new() -> Self {
        Lut { bits: 0 }
    }

    /// A LUT with the given raw truth table.
    pub fn from_bits(bits: u16) -> Self {
        Lut { bits }
    }

    /// A LUT computing constant `value`.
    pub fn constant(value: bool) -> Self {
        Lut {
            bits: if value { 0xFFFF } else { 0x0000 },
        }
    }

    /// A LUT that passes through input `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 4`.
    pub fn passthrough(idx: usize) -> Self {
        assert!(idx < LUT_INPUTS, "lut input index {idx} out of range");
        Lut::from_fn(|ins| ins[idx])
    }

    /// Builds a truth table by evaluating `f` on all 16 input vectors.
    pub fn from_fn<F: Fn([bool; LUT_INPUTS]) -> bool>(f: F) -> Self {
        let mut bits = 0u16;
        for i in 0..LUT_BITS {
            let ins = [i & 1 != 0, i & 2 != 0, i & 4 != 0, i & 8 != 0];
            if f(ins) {
                bits |= 1 << i;
            }
        }
        Lut { bits }
    }

    /// The raw 16-bit truth table.
    pub fn bits(&self) -> u16 {
        self.bits
    }

    /// Replaces the truth table.
    pub fn set_bits(&mut self, bits: u16) {
        self.bits = bits;
    }

    /// Evaluates the LUT for one input vector.
    pub fn eval(&self, inputs: [bool; LUT_INPUTS]) -> bool {
        let mut addr = 0usize;
        for (i, b) in inputs.iter().enumerate() {
            if *b {
                addr |= 1 << i;
            }
        }
        (self.bits >> addr) & 1 == 1
    }

    /// True if the output never depends on input `idx`.
    pub fn ignores_input(&self, idx: usize) -> bool {
        assert!(idx < LUT_INPUTS, "lut input index {idx} out of range");
        for a in 0..LUT_BITS {
            let b = a ^ (1 << idx);
            if (self.bits >> a) & 1 != (self.bits >> b) & 1 {
                return false;
            }
        }
        true
    }

    /// True if the LUT computes a constant function.
    pub fn is_constant(&self) -> bool {
        self.bits == 0 || self.bits == 0xFFFF
    }
}

impl fmt::Display for Lut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LUT:{:04X}", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_luts() {
        assert!(Lut::constant(true).eval([false; 4]));
        assert!(Lut::constant(true).eval([true; 4]));
        assert!(!Lut::constant(false).eval([true; 4]));
        assert!(Lut::constant(true).is_constant());
        assert!(!Lut::passthrough(0).is_constant());
    }

    #[test]
    fn passthrough_each_input() {
        for idx in 0..4 {
            let lut = Lut::passthrough(idx);
            for v in 0..16u32 {
                let ins = [v & 1 != 0, v & 2 != 0, v & 4 != 0, v & 8 != 0];
                assert_eq!(lut.eval(ins), ins[idx]);
            }
        }
    }

    #[test]
    fn from_fn_matches_eval() {
        let xor4 = Lut::from_fn(|i| i[0] ^ i[1] ^ i[2] ^ i[3]);
        assert!(xor4.eval([true, false, false, false]));
        assert!(!xor4.eval([true, true, false, false]));
        assert!(xor4.eval([true, true, true, false]));
    }

    #[test]
    fn ignores_input_detects_support() {
        let and01 = Lut::from_fn(|i| i[0] && i[1]);
        assert!(!and01.ignores_input(0));
        assert!(!and01.ignores_input(1));
        assert!(and01.ignores_input(2));
        assert!(and01.ignores_input(3));
        assert!(Lut::constant(false).ignores_input(0));
    }

    #[test]
    fn bits_roundtrip() {
        let mut lut = Lut::new();
        lut.set_bits(0xBEEF);
        assert_eq!(lut.bits(), 0xBEEF);
        assert_eq!(Lut::from_bits(0xBEEF), lut);
    }

    #[test]
    fn display_shows_table() {
        assert_eq!(Lut::from_bits(0x00FF).to_string(), "LUT:00FF");
    }
}
