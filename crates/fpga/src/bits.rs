//! A compact bit vector used for configuration frames and readback data.
//!
//! The configuration memory of a Virtex device is a large array of bits
//! addressed frame-by-frame; [`BitVec`] is the payload type for one frame.
//! It is deliberately small and dependency-free.

use std::fmt;

/// A fixed-length vector of bits backed by `u64` words.
///
/// ```
/// use rtm_fpga::bits::BitVec;
/// let mut bv = BitVec::zeros(100);
/// bv.set(99, true);
/// assert!(bv.get(99));
/// assert_eq!(bv.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates a bit vector from an iterator of bools.
    pub fn from_bools<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bools: Vec<bool> = iter.into_iter().collect();
        let mut bv = BitVec::zeros(bools.len());
        for (i, b) in bools.iter().enumerate() {
            bv.set(i, *b);
        }
        bv
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Writes bit `idx`, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    pub fn set(&mut self, idx: usize, value: bool) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        let old = *word & mask != 0;
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
        old
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of bit positions at which `self` and `other` differ.
    ///
    /// This is the quantity the relocation engine audits: writing a frame
    /// whose diff with the resident frame is zero produces **no transient**
    /// on the device (paper §2).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn hamming(&self, other: &BitVec) -> usize {
        assert_eq!(
            self.len, other.len,
            "hamming distance requires equal lengths"
        );
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Indices of bits that differ from `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn diff_indices(&self, other: &BitVec) -> Vec<usize> {
        assert_eq!(self.len, other.len, "diff requires equal lengths");
        let mut out = Vec::new();
        for (w, (a, b)) in self.words.iter().zip(&other.words).enumerate() {
            let mut x = a ^ b;
            while x != 0 {
                let bit = x.trailing_zeros() as usize;
                let idx = w * 64 + bit;
                if idx < self.len {
                    out.push(idx);
                }
                x &= x - 1;
            }
        }
        out
    }

    /// Iterator over all bits, LSB-first.
    pub fn iter(&self) -> Iter<'_> {
        Iter { bv: self, idx: 0 }
    }

    /// Packs the bits into 32-bit big-endian configuration words
    /// (bit 0 of the vector maps to the MSB of word 0, matching the
    /// shift order of the configuration logic).
    pub fn to_config_words(&self) -> Vec<u32> {
        let n_words = self.len.div_ceil(32);
        let mut out = vec![0u32; n_words];
        for i in 0..self.len {
            if self.get(i) {
                out[i / 32] |= 1 << (31 - (i % 32));
            }
        }
        out
    }

    /// Rebuilds a bit vector of length `len` from configuration words
    /// produced by [`BitVec::to_config_words`].
    pub fn from_config_words(words: &[u32], len: usize) -> Self {
        let mut bv = BitVec::zeros(len);
        for i in 0..len {
            let w = words.get(i / 32).copied().unwrap_or(0);
            bv.set(i, (w >> (31 - (i % 32))) & 1 == 1);
        }
        bv
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; {} ones]", self.len, self.count_ones())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitVec::from_bools(iter)
    }
}

/// Iterator over the bits of a [`BitVec`], produced by [`BitVec::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    bv: &'a BitVec,
    idx: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.idx >= self.bv.len {
            return None;
        }
        let b = self.bv.get(self.idx);
        self.idx += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.bv.len - self.idx;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_no_ones() {
        let bv = BitVec::zeros(130);
        assert_eq!(bv.len(), 130);
        assert_eq!(bv.count_ones(), 0);
        assert!(!bv.get(129));
    }

    #[test]
    fn set_get_roundtrip_across_word_boundary() {
        let mut bv = BitVec::zeros(70);
        assert!(!bv.set(63, true));
        assert!(!bv.set(64, true));
        assert!(bv.get(63));
        assert!(bv.get(64));
        assert!(!bv.get(62));
        assert!(bv.set(63, false));
        assert!(!bv.get(63));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(8).get(8);
    }

    #[test]
    fn hamming_counts_differences() {
        let mut a = BitVec::zeros(100);
        let mut b = BitVec::zeros(100);
        a.set(0, true);
        a.set(99, true);
        b.set(99, true);
        assert_eq!(a.hamming(&b), 1);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn diff_indices_match_hamming() {
        let mut a = BitVec::zeros(70);
        let mut b = BitVec::zeros(70);
        for i in [0usize, 5, 64, 69] {
            a.set(i, true);
        }
        b.set(5, true);
        let d = a.diff_indices(&b);
        assert_eq!(d, vec![0, 64, 69]);
        assert_eq!(d.len(), a.hamming(&b));
    }

    #[test]
    fn config_word_roundtrip() {
        let mut bv = BitVec::zeros(75);
        for i in (0..75).step_by(7) {
            bv.set(i, true);
        }
        let words = bv.to_config_words();
        assert_eq!(words.len(), 3);
        let back = BitVec::from_config_words(&words, 75);
        assert_eq!(bv, back);
    }

    #[test]
    fn from_bools_and_iter() {
        let pattern = [true, false, true, true, false];
        let bv: BitVec = pattern.iter().copied().collect();
        let back: Vec<bool> = bv.iter().collect();
        assert_eq!(back, pattern);
    }
}
