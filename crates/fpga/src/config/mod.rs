//! The configuration memory: frames, column layout and the bit image.
//!
//! "The configuration memory can be visualised as a rectangular array of
//! bits, which are grouped into one-bit wide vertical frames extending from
//! the top to the bottom of the array. A frame is the smallest unit of
//! configuration that can be written to or read from the configuration
//! memory." (paper §2)

mod frame;
pub mod layout;
mod memory;

pub use frame::{BlockType, Frame, FrameAddress};
pub use memory::{ConfigMemory, FrameWriteEffect};
