//! Mapping between typed device resources and configuration-frame bits.
//!
//! Each CLB column has [`FRAMES_PER_CLB_COLUMN`] frames; every frame
//! contributes [`BITS_PER_ROW_PER_FRAME`] bits to each CLB row (plus one
//! pad row-group at the top and bottom). A tile therefore owns
//! `48 × 18 = 864` configuration bits, addressed here by a **tile-local
//! bit index** `k`:
//!
//! | `k` range   | resource                                   |
//! |-------------|--------------------------------------------|
//! | `0..96`     | logic-cell configuration (4 × 24 bits)     |
//! | `96..100`   | storage-element state (one bit per cell)   |
//! | `100..100+P`| routing PIPs, in [`pip_table`] order       |
//! | rest        | reserved (always zero)                     |
//!
//! This single table is what makes the paper's observation true in the
//! model: a CLB's configuration **and** its state and routing live
//! interleaved in the same column frames, so relocating a CLB touches
//! several frames, and every touched frame may also cover unrelated logic
//! (which must be rewritten with identical values).

use crate::cell::CELL_CONFIG_BITS;
use crate::clb::{CELLS_PER_CLB, CLB_CONFIG_BITS};
use crate::config::frame::FrameAddress;
use crate::geom::ClbCoord;
use crate::part::{Part, BITS_PER_ROW_PER_FRAME, FRAMES_PER_CLB_COLUMN};
use crate::routing::{pip_bit_index, pip_table, Pip};

/// Tile-local configuration bits per tile (48 frames × 18 bits).
pub const TILE_CONFIG_BITS: usize = FRAMES_PER_CLB_COLUMN as usize * BITS_PER_ROW_PER_FRAME;

/// First tile-local bit of the storage-state group.
pub const STATE_BITS_BASE: usize = CLB_CONFIG_BITS;

/// First tile-local bit of the routing-PIP group.
pub const PIP_BITS_BASE: usize = STATE_BITS_BASE + CELLS_PER_CLB;

/// Converts a tile-local bit index into a frame address and bit offset
/// within that frame.
///
/// # Panics
///
/// Panics if `k >= TILE_CONFIG_BITS`.
pub fn tile_bit_location(tile: ClbCoord, k: usize) -> (FrameAddress, usize) {
    assert!(k < TILE_CONFIG_BITS, "tile-local bit {k} out of range");
    let minor = (k / BITS_PER_ROW_PER_FRAME) as u16;
    // Row 0 of the frame payload is the top pad group; CLB row r uses
    // payload rows r+1.
    let bit = (tile.row as usize + 1) * BITS_PER_ROW_PER_FRAME + (k % BITS_PER_ROW_PER_FRAME);
    (FrameAddress::clb(tile.col, minor), bit)
}

/// Inverse of [`tile_bit_location`] for CLB columns: which tile and
/// tile-local bit a frame bit belongs to. Returns `None` for pad rows.
pub fn frame_bit_owner(part: Part, addr: FrameAddress, bit: usize) -> Option<(ClbCoord, usize)> {
    if addr.block != crate::config::BlockType::Clb {
        return None;
    }
    let payload_row = bit / BITS_PER_ROW_PER_FRAME;
    let within = bit % BITS_PER_ROW_PER_FRAME;
    if payload_row == 0 || payload_row > part.clb_rows() as usize {
        return None; // pad groups
    }
    let row = (payload_row - 1) as u16;
    let k = addr.minor as usize * BITS_PER_ROW_PER_FRAME + within;
    Some((ClbCoord::new(row, addr.major), k))
}

/// Location of one logic-cell configuration bit.
///
/// # Panics
///
/// Panics if `cell >= 4` or `bit >= CELL_CONFIG_BITS`.
pub fn cell_config_bit(tile: ClbCoord, cell: usize, bit: usize) -> (FrameAddress, usize) {
    assert!(cell < CELLS_PER_CLB, "cell index {cell} out of range");
    assert!(bit < CELL_CONFIG_BITS, "cell config bit {bit} out of range");
    tile_bit_location(tile, cell * CELL_CONFIG_BITS + bit)
}

/// Location of the storage-state bit of one cell.
///
/// # Panics
///
/// Panics if `cell >= 4`.
pub fn state_bit(tile: ClbCoord, cell: usize) -> (FrameAddress, usize) {
    assert!(cell < CELLS_PER_CLB, "cell index {cell} out of range");
    tile_bit_location(tile, STATE_BITS_BASE + cell)
}

/// Location of the configuration bit controlling `pip`, or `None` if the
/// PIP does not exist in the switch pattern.
pub fn pip_config_bit(pip: &Pip) -> Option<(FrameAddress, usize)> {
    let idx = pip_bit_index(pip.from, pip.to)?;
    Some(tile_bit_location(pip.tile, PIP_BITS_BASE + idx))
}

/// Number of valid PIPs per tile (must fit the tile bit budget).
pub fn pip_bits_used() -> usize {
    pip_table().len()
}

/// The set of frame minors (within a tile's column) that hold any part of
/// the tile's logic-cell configuration. Useful for counting the frames a
/// CLB copy must write.
pub fn clb_config_minors() -> std::ops::Range<u16> {
    0..(CLB_CONFIG_BITS.div_ceil(BITS_PER_ROW_PER_FRAME)) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BlockType;

    #[test]
    fn budget_fits() {
        assert!(
            PIP_BITS_BASE + pip_bits_used() <= TILE_CONFIG_BITS,
            "pip bits {} + base {} exceed tile budget {}",
            pip_bits_used(),
            PIP_BITS_BASE,
            TILE_CONFIG_BITS
        );
    }

    #[test]
    fn tile_bit_location_distinct_within_tile() {
        let tile = ClbCoord::new(3, 7);
        let mut seen = std::collections::HashSet::new();
        for k in 0..TILE_CONFIG_BITS {
            let loc = tile_bit_location(tile, k);
            assert!(seen.insert(loc), "duplicate location for bit {k}");
            assert_eq!(loc.0.block, BlockType::Clb);
            assert_eq!(loc.0.major, 7);
        }
    }

    #[test]
    fn tiles_in_same_column_share_frames_not_bits() {
        let a = tile_bit_location(ClbCoord::new(0, 5), 100);
        let b = tile_bit_location(ClbCoord::new(1, 5), 100);
        assert_eq!(a.0, b.0, "same column + same k -> same frame");
        assert_ne!(a.1, b.1, "different rows -> different frame bits");
    }

    #[test]
    fn owner_roundtrip() {
        let part = Part::Xcv200;
        let tile = ClbCoord::new(13, 21);
        for k in [0usize, 95, 96, 99, 100, 500, TILE_CONFIG_BITS - 1] {
            let (addr, bit) = tile_bit_location(tile, k);
            let (owner, k2) = frame_bit_owner(part, addr, bit).unwrap();
            assert_eq!(owner, tile);
            assert_eq!(k2, k);
        }
    }

    #[test]
    fn pad_rows_have_no_owner() {
        let part = Part::Xcv200;
        let addr = FrameAddress::clb(0, 0);
        assert_eq!(frame_bit_owner(part, addr, 0), None);
        let bottom_pad = (part.clb_rows() as usize + 1) * BITS_PER_ROW_PER_FRAME;
        assert_eq!(frame_bit_owner(part, addr, bottom_pad), None);
    }

    #[test]
    fn clb_config_spans_expected_minors() {
        // 96 bits / 18 per frame = 6 minors (0..6).
        assert_eq!(clb_config_minors(), 0..6);
    }

    #[test]
    fn pip_bits_do_not_collide_with_cell_bits() {
        let tile = ClbCoord::new(0, 0);
        let pip = crate::routing::Pip::new(
            tile,
            crate::routing::Wire::CellOut(0),
            crate::routing::Wire::Out(crate::routing::Dir::North, 0),
        );
        let (addr, bit) = pip_config_bit(&pip).unwrap();
        let cell_locs: Vec<_> = (0..CELLS_PER_CLB)
            .flat_map(|c| (0..CELL_CONFIG_BITS).map(move |b| (c, b)))
            .collect();
        for (c, b) in cell_locs {
            assert_ne!(cell_config_bit(tile, c, b), (addr, bit));
        }
    }
}
