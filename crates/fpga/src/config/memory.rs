//! The configuration-memory bit image.

use crate::bits::BitVec;
use crate::config::frame::{BlockType, Frame, FrameAddress};
use crate::error::FpgaError;
use crate::part::{Part, FRAMES_CLOCK_COLUMN, FRAMES_PER_CLB_COLUMN, FRAMES_PER_IOB_COLUMN};
use std::collections::BTreeMap;

/// The result of writing one frame: which payload bits actually changed.
///
/// The relocation procedure relies on the fact that "rewriting the same
/// configuration data does not generate any transient signals" (paper §2);
/// auditing `changed_bits` against the set of bits a step *intended* to
/// change is how the transparency verifier proves a step is safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameWriteEffect {
    /// The frame that was written.
    pub addr: FrameAddress,
    /// Payload bit positions whose value changed.
    pub changed_bits: Vec<usize>,
}

impl FrameWriteEffect {
    /// True if the write was a pure rewrite (no level changes anywhere).
    pub fn is_transparent_rewrite(&self) -> bool {
        self.changed_bits.is_empty()
    }
}

/// The full configuration memory of one device: a map from frame address
/// to frame payload, all frames initially zero.
///
/// ```
/// use rtm_fpga::config::{ConfigMemory, FrameAddress};
/// use rtm_fpga::part::Part;
///
/// # fn main() -> Result<(), rtm_fpga::FpgaError> {
/// let mut mem = ConfigMemory::new(Part::Xcv200);
/// let addr = FrameAddress::clb(0, 0);
/// let mut frame = mem.read_frame(addr)?;
/// frame.set(5, true);
/// let effect = mem.write_frame(addr, frame)?;
/// assert_eq!(effect.changed_bits, vec![5]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigMemory {
    part: Part,
    // Only frames that have ever been written are stored; absent frames
    // read as all-zero.
    frames: BTreeMap<FrameAddress, Frame>,
}

impl ConfigMemory {
    /// An all-zero configuration memory for `part`.
    pub fn new(part: Part) -> Self {
        ConfigMemory {
            part,
            frames: BTreeMap::new(),
        }
    }

    /// The device this memory belongs to.
    pub fn part(&self) -> Part {
        self.part
    }

    /// Frame payload length in bits.
    pub fn frame_len(&self) -> usize {
        self.part.frame_payload_bits()
    }

    /// Validates that `addr` exists on this part.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BadFrameAddress`] if the column or minor index
    /// is out of range.
    pub fn validate_addr(&self, addr: FrameAddress) -> Result<(), FpgaError> {
        let ok = match addr.block {
            BlockType::Clb => {
                addr.major < self.part.clb_cols() && addr.minor < FRAMES_PER_CLB_COLUMN
            }
            BlockType::Iob => addr.major < 2 && addr.minor < FRAMES_PER_IOB_COLUMN,
            BlockType::Clock => addr.major == 0 && addr.minor < FRAMES_CLOCK_COLUMN,
        };
        if ok {
            Ok(())
        } else {
            Err(FpgaError::BadFrameAddress {
                detail: format!("{addr} on {}", self.part),
            })
        }
    }

    /// Reads a frame (readback).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BadFrameAddress`] for addresses outside the
    /// part.
    pub fn read_frame(&self, addr: FrameAddress) -> Result<Frame, FpgaError> {
        self.validate_addr(addr)?;
        Ok(self
            .frames
            .get(&addr)
            .cloned()
            .unwrap_or_else(|| Frame::zeros(self.frame_len())))
    }

    /// Writes a frame, returning which bits changed.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BadFrameAddress`] for addresses outside the
    /// part and [`FpgaError::FrameLengthMismatch`] if the payload length is
    /// wrong.
    pub fn write_frame(
        &mut self,
        addr: FrameAddress,
        frame: Frame,
    ) -> Result<FrameWriteEffect, FpgaError> {
        self.validate_addr(addr)?;
        if frame.len() != self.frame_len() {
            return Err(FpgaError::FrameLengthMismatch {
                expected: self.frame_len(),
                actual: frame.len(),
            });
        }
        let old = self.read_frame(addr)?;
        let changed_bits = old.diff(&frame);
        self.frames.insert(addr, frame);
        Ok(FrameWriteEffect { addr, changed_bits })
    }

    /// Reads one bit of one frame.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BadFrameAddress`] for addresses outside the
    /// part.
    ///
    /// # Panics
    ///
    /// Panics if `bit` exceeds the frame length.
    pub fn get_bit(&self, addr: FrameAddress, bit: usize) -> Result<bool, FpgaError> {
        Ok(self.read_frame(addr)?.get(bit))
    }

    /// Sets one bit of one frame, returning whether the value changed.
    ///
    /// Note: on real hardware this still costs a whole-frame write; the
    /// cost model accounts frames, not bits.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BadFrameAddress`] for addresses outside the
    /// part.
    ///
    /// # Panics
    ///
    /// Panics if `bit` exceeds the frame length.
    pub fn set_bit(
        &mut self,
        addr: FrameAddress,
        bit: usize,
        value: bool,
    ) -> Result<bool, FpgaError> {
        self.validate_addr(addr)?;
        let len = self.frame_len();
        let frame = self.frames.entry(addr).or_insert_with(|| Frame::zeros(len));
        let old = frame.set(bit, value);
        Ok(old != value)
    }

    /// All frame addresses that currently differ from `other`.
    ///
    /// This is the primitive behind partial-bitstream generation: the tool
    /// writes exactly these frames.
    pub fn diff_frames(&self, other: &ConfigMemory) -> Vec<FrameAddress> {
        let mut out = Vec::new();
        let zero = Frame::zeros(self.frame_len());
        let mut addrs: Vec<FrameAddress> = self
            .frames
            .keys()
            .chain(other.frames.keys())
            .copied()
            .collect();
        addrs.sort();
        addrs.dedup();
        for addr in addrs {
            let a = self.frames.get(&addr).unwrap_or(&zero);
            let b = other.frames.get(&addr).unwrap_or(&zero);
            if a != b {
                out.push(addr);
            }
        }
        out
    }

    /// Number of frames that have been written at least once.
    pub fn touched_frames(&self) -> usize {
        self.frames.len()
    }

    /// A snapshot for recovery ("the program always keeps a complete copy
    /// of the current configuration", paper §4).
    pub fn snapshot(&self) -> ConfigMemory {
        self.clone()
    }

    /// Packs every non-zero frame as address + payload words (a trivial
    /// serialisation used by the recovery file format).
    pub fn dump(&self) -> Vec<(FrameAddress, Vec<u32>)> {
        self.frames
            .iter()
            .map(|(addr, frame)| (*addr, frame.as_bits().to_config_words()))
            .collect()
    }

    /// Rebuilds a memory from [`ConfigMemory::dump`] output.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BadFrameAddress`] if a dumped address does not
    /// exist on `part`.
    pub fn restore(part: Part, dump: &[(FrameAddress, Vec<u32>)]) -> Result<Self, FpgaError> {
        let mut mem = ConfigMemory::new(part);
        for (addr, words) in dump {
            let bits = BitVec::from_config_words(words, mem.frame_len());
            mem.write_frame(*addr, Frame::from_bits(bits))?;
        }
        Ok(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_frames_read_zero() {
        let mem = ConfigMemory::new(Part::Xcv50);
        let f = mem.read_frame(FrameAddress::clb(3, 7)).unwrap();
        assert_eq!(f.as_bits().count_ones(), 0);
        assert_eq!(f.len(), Part::Xcv50.frame_payload_bits());
    }

    #[test]
    fn write_reports_changed_bits_only() {
        let mut mem = ConfigMemory::new(Part::Xcv50);
        let addr = FrameAddress::clb(0, 0);
        let mut f = mem.read_frame(addr).unwrap();
        f.set(1, true);
        f.set(100, true);
        let e1 = mem.write_frame(addr, f.clone()).unwrap();
        assert_eq!(e1.changed_bits, vec![1, 100]);
        // Rewriting identical data: zero transients.
        let e2 = mem.write_frame(addr, f).unwrap();
        assert!(e2.is_transparent_rewrite());
    }

    #[test]
    fn bad_addresses_rejected() {
        let mem = ConfigMemory::new(Part::Xcv50);
        assert!(mem.read_frame(FrameAddress::clb(24, 0)).is_err());
        assert!(mem.read_frame(FrameAddress::clb(0, 48)).is_err());
        assert!(mem.read_frame(FrameAddress::iob(2, 0)).is_err());
        assert!(mem.read_frame(FrameAddress::clock(8)).is_err());
        assert!(mem.read_frame(FrameAddress::clock(7)).is_ok());
    }

    #[test]
    fn wrong_frame_length_rejected() {
        let mut mem = ConfigMemory::new(Part::Xcv50);
        let err = mem
            .write_frame(FrameAddress::clb(0, 0), Frame::zeros(10))
            .unwrap_err();
        assert!(matches!(err, FpgaError::FrameLengthMismatch { .. }));
    }

    #[test]
    fn set_bit_reports_change() {
        let mut mem = ConfigMemory::new(Part::Xcv50);
        let addr = FrameAddress::clb(1, 1);
        assert!(mem.set_bit(addr, 9, true).unwrap());
        assert!(!mem.set_bit(addr, 9, true).unwrap());
        assert!(mem.get_bit(addr, 9).unwrap());
    }

    #[test]
    fn diff_frames_finds_exactly_differences() {
        let mut a = ConfigMemory::new(Part::Xcv50);
        let mut b = ConfigMemory::new(Part::Xcv50);
        a.set_bit(FrameAddress::clb(2, 3), 0, true).unwrap();
        b.set_bit(FrameAddress::clb(2, 3), 0, true).unwrap();
        a.set_bit(FrameAddress::clb(5, 1), 4, true).unwrap();
        b.set_bit(FrameAddress::clock(2), 8, true).unwrap();
        let d = a.diff_frames(&b);
        assert_eq!(d, vec![FrameAddress::clock(2), FrameAddress::clb(5, 1)]);
        assert_eq!(a.diff_frames(&a.clone()), vec![]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut mem = ConfigMemory::new(Part::Xcv100);
        mem.set_bit(FrameAddress::clb(7, 11), 33, true).unwrap();
        mem.set_bit(FrameAddress::iob(1, 20), 2, true).unwrap();
        let dump = mem.dump();
        let back = ConfigMemory::restore(Part::Xcv100, &dump).unwrap();
        assert_eq!(back, mem);
        assert!(back.snapshot().diff_frames(&mem).is_empty());
    }
}
