//! Frame addressing and frame payloads.

use crate::bits::BitVec;
use std::fmt;

/// Which block of the device a configuration column belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BlockType {
    /// The centre clock column.
    Clock,
    /// A CLB column (`major` = CLB column index).
    Clb,
    /// An IOB column (`major` = 0 for left, 1 for right).
    Iob,
}

impl fmt::Display for BlockType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BlockType::Clock => "CLK",
            BlockType::Clb => "CLB",
            BlockType::Iob => "IOB",
        };
        f.write_str(s)
    }
}

/// The address of one configuration frame: block type, major (column) and
/// minor (frame-within-column) address.
///
/// ```
/// use rtm_fpga::config::{FrameAddress, BlockType};
/// let fa = FrameAddress::clb(7, 13);
/// assert_eq!(fa.block, BlockType::Clb);
/// assert_eq!(fa.major, 7);
/// assert_eq!(fa.minor, 13);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameAddress {
    /// Block type.
    pub block: BlockType,
    /// Column index within the block type.
    pub major: u16,
    /// Frame index within the column.
    pub minor: u16,
}

impl FrameAddress {
    /// Frame `minor` of CLB column `major`.
    pub fn clb(major: u16, minor: u16) -> Self {
        FrameAddress {
            block: BlockType::Clb,
            major,
            minor,
        }
    }

    /// Frame `minor` of IOB column `major` (0 = left, 1 = right).
    pub fn iob(major: u16, minor: u16) -> Self {
        FrameAddress {
            block: BlockType::Iob,
            major,
            minor,
        }
    }

    /// Frame `minor` of the clock column.
    pub fn clock(minor: u16) -> Self {
        FrameAddress {
            block: BlockType::Clock,
            major: 0,
            minor,
        }
    }

    /// Packs the address into the 32-bit FAR register format used by the
    /// bitstream model (2 block bits, 15 major bits, 15 minor bits).
    pub fn to_far(self) -> u32 {
        let block = match self.block {
            BlockType::Clock => 0u32,
            BlockType::Clb => 1,
            BlockType::Iob => 2,
        };
        (block << 30) | ((self.major as u32) << 15) | self.minor as u32
    }

    /// Unpacks a FAR register value.
    pub fn from_far(far: u32) -> Self {
        let block = match far >> 30 {
            0 => BlockType::Clock,
            1 => BlockType::Clb,
            _ => BlockType::Iob,
        };
        FrameAddress {
            block,
            major: ((far >> 15) & 0x7FFF) as u16,
            minor: (far & 0x7FFF) as u16,
        }
    }
}

impl fmt::Display for FrameAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}].{}", self.block, self.major, self.minor)
    }
}

/// One configuration frame payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Frame {
    bits: BitVec,
}

impl Frame {
    /// An all-zero frame of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Frame {
            bits: BitVec::zeros(len),
        }
    }

    /// A frame wrapping an existing bit vector.
    pub fn from_bits(bits: BitVec) -> Self {
        Frame { bits }
    }

    /// Frame length in bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True if the frame has no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Reads one bit.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn get(&self, idx: usize) -> bool {
        self.bits.get(idx)
    }

    /// Writes one bit, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set(&mut self, idx: usize, value: bool) -> bool {
        self.bits.set(idx, value)
    }

    /// Borrow of the underlying bit vector.
    pub fn as_bits(&self) -> &BitVec {
        &self.bits
    }

    /// Extracts the underlying bit vector.
    pub fn into_bits(self) -> BitVec {
        self.bits
    }

    /// Bit positions that differ from `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn diff(&self, other: &Frame) -> Vec<usize> {
        self.bits.diff_indices(&other.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn far_roundtrip() {
        for fa in [
            FrameAddress::clb(41, 47),
            FrameAddress::iob(1, 53),
            FrameAddress::clock(7),
            FrameAddress::clb(0, 0),
        ] {
            assert_eq!(FrameAddress::from_far(fa.to_far()), fa);
        }
    }

    #[test]
    fn frame_set_get_diff() {
        let mut a = Frame::zeros(64);
        let b = Frame::zeros(64);
        assert!(!a.set(10, true));
        assert!(a.get(10));
        assert_eq!(a.diff(&b), vec![10]);
        assert_eq!(a.diff(&a.clone()), Vec::<usize>::new());
    }

    #[test]
    fn display_format() {
        assert_eq!(FrameAddress::clb(3, 9).to_string(), "CLB[3].9");
        assert_eq!(FrameAddress::clock(2).to_string(), "CLK[0].2");
    }

    #[test]
    fn ordering_groups_by_block_then_major() {
        let a = FrameAddress::clock(0);
        let b = FrameAddress::clb(0, 5);
        let c = FrameAddress::clb(1, 0);
        let d = FrameAddress::iob(0, 0);
        let mut v = vec![d, c, b, a];
        v.sort();
        assert_eq!(v, vec![a, b, c, d]);
    }
}
