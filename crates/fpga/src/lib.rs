//! # rtm-fpga
//!
//! A Virtex-class FPGA device and configuration-memory model.
//!
//! This crate is the hardware substrate for the DATE 2003 reproduction
//! *Run-Time Management of Logic Resources on Reconfigurable Systems*
//! (Gericota et al.). It models the parts of a Xilinx Virtex device that the
//! paper's dynamic-relocation mechanism depends on:
//!
//! * a rectangular array of CLBs, each containing four [`cell::LogicCell`]s
//!   (4-input LUT + storage element with clock-enable),
//! * a configurable routing fabric described as programmable interconnect
//!   points ([`routing::Pip`]) between [`routing::Wire`]s,
//! * a configuration memory organised as one-bit-wide vertical
//!   [`config::Frame`]s grouped into columns — the smallest units that can be
//!   read or written, which is what makes glitch-free partial
//!   reconfiguration possible, and
//! * device geometry tables for the Virtex family ([`part::Part`]),
//!   including the XCV200 used in the paper's experiments.
//!
//! The model maintains the invariant the paper relies on: **rewriting a
//! configuration bit with the value it already holds produces no transient**
//! ([`config::ConfigMemory::write_frame`] reports exactly which bits
//! changed), so a relocation procedure can be audited for transparency.
//!
//! ## Example
//!
//! ```
//! use rtm_fpga::{Device, part::Part, geom::ClbCoord, clb::Clb};
//!
//! # fn main() -> Result<(), rtm_fpga::FpgaError> {
//! let mut dev = Device::new(Part::Xcv200);
//! assert_eq!(dev.part().clb_rows(), 28);
//! assert_eq!(dev.part().clb_cols(), 42);
//!
//! // Configure a CLB and observe the frame writes it generates.
//! let mut clb = Clb::default();
//! clb.cells[0].lut.set_bits(0xF0F0);
//! let writes = dev.set_clb(ClbCoord::new(3, 7), clb)?;
//! assert!(!writes.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bits;
pub mod cell;
pub mod clb;
pub mod config;
pub mod device;
pub mod error;
pub mod geom;
pub mod iob;
pub mod lut;
pub mod part;
pub mod routing;
pub mod storage;

pub use device::Device;
pub use error::FpgaError;
pub use geom::{ClbCoord, Rect};
