//! Crate-level smoke tests: fail fast on device-model regressions
//! without pulling in the full stack.

use rtm_fpga::cell::LogicCell;
use rtm_fpga::geom::ClbCoord;
use rtm_fpga::lut::Lut;
use rtm_fpga::part::Part;
use rtm_fpga::Device;

#[test]
fn every_part_constructs() {
    for part in Part::ALL {
        let dev = Device::new(part);
        assert!(dev.rows() > 0 && dev.cols() > 0, "{part:?} has no array");
        assert_eq!(dev.part(), part);
    }
}

#[test]
fn xcv200_dimensions_match_datasheet() {
    let dev = Device::new(Part::Xcv200);
    assert_eq!((dev.rows(), dev.cols()), (28, 42));
}

#[test]
fn set_cell_roundtrips_through_config_memory() {
    let mut dev = Device::new(Part::Xcv200);
    let loc = ClbCoord::new(3, 5);
    let cfg = LogicCell {
        lut: Lut::constant(true),
        ..LogicCell::default()
    };
    let frames = dev.set_cell(loc, 1, cfg).unwrap();
    assert!(!frames.is_empty(), "a cell write must touch frames");
    assert_eq!(dev.clb(loc).unwrap().cells[1], cfg);
}
