//! # rtm-bench
//!
//! Shared helpers for the figure/table regeneration harnesses. Each file
//! in `benches/` regenerates one figure or table of the paper (see
//! DESIGN.md section 4 for the experiment index and EXPERIMENTS.md for
//! measured vs published results); `engine_micro` additionally contains
//! Criterion micro-benchmarks of the engine itself.

#![warn(missing_docs)]

pub mod harness;
