//! Shared experiment plumbing for the figure/table harnesses.

use rtm_core::relocation::find_aux_sites;
use rtm_core::verify::TransparencyHarness;
use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_fpga::part::Part;
use rtm_fpga::Device;
use rtm_netlist::techmap::{map_to_luts, MappedNetlist};
use rtm_netlist::Netlist;
use rtm_sim::design::implement;
use rtm_sim::place::CellLoc;

/// Implements `netlist` on a fresh XCV200 in a square region big enough
/// for its cells, returning a ready transparency harness.
///
/// # Panics
///
/// Panics on implementation failure (bench circuits are sized to fit).
pub fn build_harness(netlist: &Netlist) -> (MappedNetlist, TransparencyHarness<'_>) {
    let mapped = map_to_luts(netlist).expect("benchmark circuits map");
    let mut dev = Device::new(Part::Xcv200);
    let needed = mapped.len() + mapped.n_inputs + mapped.outputs.len();
    // Density-1 placement with margin; clamp to the array.
    let side = ((needed as f64).sqrt().ceil() as u16 + 3).min(26);
    let region = Rect::new(ClbCoord::new(1, 1), side, side);
    let placed = implement(&mut dev, &mapped, region).expect("benchmark circuits implement");
    (
        mapped.clone(),
        TransparencyHarness::new(netlist, dev, placed),
    )
}

/// The nearest free destination slot for relocating `src` (the paper
/// recommends nearby moves, §3).
///
/// # Panics
///
/// Panics if the device is full (cannot happen in these experiments).
pub fn nearby_free_slot(h: &TransparencyHarness<'_>, src: CellLoc) -> CellLoc {
    find_aux_sites(h.device(), &h.placed().netdb, src.0, 1, &[src]).expect("free slot exists")[0]
}

/// A free slot at (approximately) `distance` CLBs from `src`, for the
/// move-distance ablation.
///
/// # Panics
///
/// Panics if no free slot exists in that direction.
pub fn distant_free_slot(h: &TransparencyHarness<'_>, src: CellLoc, distance: u16) -> CellLoc {
    let dev = h.device();
    let target = ClbCoord::new(
        (src.0.row + distance).min(dev.rows() - 1),
        (src.0.col + distance).min(dev.cols() - 1),
    );
    find_aux_sites(dev, &h.placed().netdb, target, 1, &[src]).expect("free slot exists")[0]
}

/// Indices of the sequential cells of the harness's design.
pub fn sequential_cells(h: &TransparencyHarness<'_>) -> Vec<usize> {
    (0..h.placed().design.cells.len())
        .filter(|i| h.placed().design.cells[*i].storage.is_sequential())
        .collect()
}

/// Prints a rule line matching `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}
