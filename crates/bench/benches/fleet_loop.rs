//! fleet_loop — the multi-device fleet under its trace scenarios,
//! swept over device counts × routing policies.
//!
//! Where `service_loop` drives one device, this harness drives the
//! sharding layer: every scenario is offered at ~(N+1)/N of the fleet's
//! capacity (N+1 staggered scenario copies over N devices) so the
//! routing decision is load-bearing. Reported per scenario/fleet/policy:
//! fleet admission rate, retries, defrag cycles, relocation traffic and
//! the peak fleet fragmentation.

use rtm_fleet::routing::standard_policies;
use rtm_fleet::{FleetConfig, FleetService};
use rtm_fpga::part::Part;
use rtm_service::trace::{Scenario, Trace};
use rtm_service::ServiceConfig;

fn fleet_trace(scenario: Scenario, copies: u64, seed: u64, stagger: u64) -> Trace {
    let traces: Vec<Trace> = (0..copies)
        .map(|k| scenario.trace(Part::Xcv50, seed + 100 * k))
        .collect();
    Trace::merged(format!("{scenario}-x{copies}"), &traces, 1 << 32, stagger)
}

fn main() {
    let seed = 42;
    println!("fleet_loop: trace-driven fleet, device-count x routing-policy sweep");
    println!(
        "{:<24} {:>7} {:>16} {:>9} {:>7} {:>7} {:>8} {:>11} {:>10}",
        "scenario",
        "devices",
        "policy",
        "admitted",
        "retry",
        "defrag",
        "moves",
        "reconf ms",
        "peak frag"
    );
    println!("{}", "-".repeat(108));
    for scenario in Scenario::ALL {
        for n_devices in [2usize, 3] {
            // Two XCV50s, plus an XCV100 in the three-device fleet.
            let mut parts = vec![Part::Xcv50; 2];
            if n_devices == 3 {
                parts.push(Part::Xcv100);
            }
            let trace = fleet_trace(scenario, n_devices as u64 + 1, seed, 170_000);
            for policy in standard_policies() {
                let name = policy.name();
                let config = FleetConfig::heterogeneous(&parts, ServiceConfig::default());
                let mut fleet = FleetService::new(config, policy);
                let report = fleet.run(&trace).expect("fleet loop stays up");
                println!(
                    "{:<24} {:>7} {:>16} {:>6}/{:<3} {:>6} {:>7} {:>8} {:>11.1} {:>10.3}",
                    scenario.name(),
                    n_devices,
                    name,
                    report.admitted(),
                    report.submitted,
                    report.retries,
                    report.defrag_cycles(),
                    report.function_moves(),
                    report.reconfig_ms(),
                    report.peak_worst_frag(),
                );
            }
        }
    }
    println!();
    println!(
        "Expected shape: round-robin pays for its blindness on the adversarial\n\
         trace (queued/deadline-starved requests on comb-fragmented devices);\n\
         the informed policies trade a little preview work for strictly more\n\
         admissions, and frag-aware routing buys the lowest relocation bill at\n\
         equal admission rates."
    );
}
