//! fleet_loop — the multi-device fleet under its trace scenarios,
//! swept over device counts × routing policies.
//!
//! Where `service_loop` drives one device, this harness drives the
//! sharding layer: every scenario is offered at ~(N+1)/N of the fleet's
//! capacity (N+1 staggered scenario copies over N devices) so the
//! routing decision is load-bearing. Reported per scenario/fleet/policy:
//! fleet admission rate, retries, defrag cycles, relocation traffic,
//! planning passes (the plan-reuse pipeline's cost metric) and the peak
//! fleet fragmentation.
//!
//! Three tiers:
//!
//! * the full scenario × policy matrix on small fleets (N = 2, 3);
//! * the epoch-engine tier — N = 256 and N = 1024 round-robin sweeps
//!   under both stepping engines ([`EngineKind::Sequential`] and the
//!   scoped-thread parallel engine): identical counters by
//!   construction, the wall-ms column shows what the parallel engine
//!   buys on multi-core hosts;
//! * the scale tier — N = 16 and N = 64 homogeneous fleets on the
//!   adversarial scenario: state-blind round-robin, the two-stage
//!   frag-aware policy, and round-robin + rebalancing migration
//!   (worst-shard-drain during idle port windows). Before the
//!   plan-reuse pipeline (epoch-cached summaries, top-K previews, plan
//!   handoff) the frag-aware sweep at these sizes previewed every
//!   device per arrival and re-planned every admission twice; now its
//!   planning cost is flat per arrival, which is what makes the N = 64
//!   row finish at all. The rebalancing row shows the repair: the
//!   migration counter moves and the admission-time rearrangement
//!   moves drop to zero — the combs are fixed off the critical path.

use rtm_fleet::rebalance::{RebalancePolicy, WorstShardDrain};
use rtm_fleet::routing::{standard_policies, FragAware, RoundRobin, RoutingPolicy};
use rtm_fleet::{EngineKind, FleetConfig, FleetService};
use rtm_fpga::part::Part;
use rtm_obs::Stopwatch;
use rtm_service::trace::{Scenario, Trace};
use rtm_service::ServiceConfig;

fn fleet_trace(scenario: Scenario, copies: u64, seed: u64, stagger: u64) -> Trace {
    // One definition for the fleet-scale workload (example, bench,
    // tests, CI baseline all compare the same event stream).
    scenario.fleet_trace(Part::Xcv50, copies, seed, stagger)
}

fn header() {
    println!(
        "{:<24} {:>7} {:>13} {:>18} {:>9} {:>7} {:>7} {:>8} {:>6} {:>9} {:>8} {:>10} {:>9}",
        "scenario",
        "devices",
        "engine",
        "policy",
        "admitted",
        "retry",
        "defrag",
        "moves",
        "migr",
        "planning",
        "reused",
        "peak frag",
        "wall ms"
    );
    println!("{}", "-".repeat(148));
}

fn run_row(
    scenario: Scenario,
    parts: &[Part],
    engine: EngineKind,
    policy: Box<dyn RoutingPolicy>,
    rebalancer: Option<Box<dyn RebalancePolicy>>,
    trace: &Trace,
) {
    let name = if rebalancer.is_some() {
        format!("{}+rebalance", policy.name())
    } else {
        policy.name().to_string()
    };
    let mut config =
        FleetConfig::heterogeneous(parts, ServiceConfig::default()).with_engine(engine);
    if rebalancer.is_some() {
        config = config.with_rebalance_threshold(0.4);
    }
    let mut fleet = FleetService::new(config, policy);
    if let Some(r) = rebalancer {
        fleet = fleet.with_rebalancer(r);
    }
    let sw = Stopwatch::start();
    let report = fleet.run(trace).expect("fleet loop stays up");
    let wall_ms = sw.elapsed_ms();
    let stats = report.plan_stats();
    println!(
        "{:<24} {:>7} {:>13} {:>18} {:>6}/{:<5} {:>4} {:>7} {:>8} {:>6} {:>9} {:>8} {:>10.3} {:>9.0}",
        scenario.name(),
        parts.len(),
        engine.name(),
        name,
        report.admitted(),
        report.submitted,
        report.retries,
        report.defrag_cycles(),
        report.function_moves(),
        report.migrations,
        stats.make_room_calls + stats.compaction_plans,
        stats.plans_reused,
        report.peak_worst_frag(),
        wall_ms,
    );
}

fn main() {
    let seed = 42;
    println!("fleet_loop: trace-driven fleet, device-count x routing-policy sweep");
    header();
    for scenario in Scenario::ALL {
        for n_devices in [2usize, 3] {
            // Two XCV50s, plus an XCV100 in the three-device fleet.
            let mut parts = vec![Part::Xcv50; 2];
            if n_devices == 3 {
                parts.push(Part::Xcv100);
            }
            let trace = fleet_trace(scenario, n_devices as u64 + 1, seed, 170_000);
            for policy in standard_policies() {
                run_row(
                    scenario,
                    &parts,
                    EngineKind::Sequential,
                    policy,
                    None,
                    &trace,
                );
            }
        }
    }

    println!();
    println!("scale tier: adversarial scenario, homogeneous XCV50 fleets");
    header();
    for n_devices in [16usize, 64] {
        let parts = vec![Part::Xcv50; n_devices];
        let trace = fleet_trace(
            Scenario::AdversarialFragmenter,
            n_devices as u64 + 1,
            seed,
            170_000,
        );
        run_row(
            Scenario::AdversarialFragmenter,
            &parts,
            EngineKind::Sequential,
            Box::new(RoundRobin::default()),
            None,
            &trace,
        );
        run_row(
            Scenario::AdversarialFragmenter,
            &parts,
            EngineKind::Sequential,
            Box::new(FragAware::default()),
            None,
            &trace,
        );
        run_row(
            Scenario::AdversarialFragmenter,
            &parts,
            EngineKind::Sequential,
            Box::new(RoundRobin::default()),
            Some(Box::<WorstShardDrain>::default()),
            &trace,
        );
    }

    // Epoch-engine tier: the same adversarial sweep at N = 256 and
    // N = 1024, sequential vs parallel. Round-robin keeps routing off
    // the critical path so the wall-ms column isolates the stepping
    // loop — on a multi-core box the parallel rows should divide the
    // sequential wall by ~min(cores, busy shards); the counters must
    // not move at all (the schedule-invariance suite pins that).
    for n_devices in [256usize, 1024] {
        let parts = vec![Part::Xcv50; n_devices];
        let trace = fleet_trace(
            Scenario::AdversarialFragmenter,
            n_devices as u64 + 1,
            seed,
            170_000,
        );
        for engine in [EngineKind::Sequential, EngineKind::Parallel { threads: 0 }] {
            run_row(
                Scenario::AdversarialFragmenter,
                &parts,
                engine,
                Box::new(RoundRobin::default()),
                None,
                &trace,
            );
        }
    }

    println!();
    println!(
        "Expected shape: round-robin pays for its blindness on the adversarial\n\
         trace (queued/deadline-starved requests on comb-fragmented devices);\n\
         the informed policies trade a little preview work for strictly more\n\
         admissions. On the scale tier, frag-aware's planning column stays\n\
         proportional to arrivals (top-K previews, plans reused for every\n\
         load), not to devices x arrivals — the plan-reuse pipeline's win.\n\
         The rebalancing row repairs round-robin's combs off the critical\n\
         path instead: the migration column moves, the admission-time\n\
         rearrangement moves drop to zero, and admissions match frag-aware\n\
         with a state-blind router."
    );
}
