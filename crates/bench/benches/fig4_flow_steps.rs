//! F4 — Fig. 4: the relocation procedure flow. Prints the executed step
//! sequence for one relocation of each class, with per-step frame traffic,
//! wait points and interface time — the machine-readable version of the
//! paper's flow diagram.

use rtm_bench::harness::{build_harness, nearby_free_slot, rule, sequential_cells};
use rtm_core::cost::CostModel;
use rtm_netlist::itc99::{self, Variant};

fn main() {
    let cost = CostModel::paper_default();
    for (variant, title) in [
        (Variant::FreeRunning, "free-running (two-phase, Fig. 2)"),
        (
            Variant::GatedClock,
            "gated-clock (auxiliary circuit, Fig. 3/4)",
        ),
        (Variant::Asynchronous, "asynchronous (latch, Fig. 3/4)"),
    ] {
        let netlist = itc99::generate(itc99::profile("b02").expect("known"), variant);
        let (_, mut h) = build_harness(&netlist);
        h.run_cycles(20).expect("clean");
        let i = sequential_cells(&h)[0];
        let src = h.placed().cell_loc(i);
        let dst = nearby_free_slot(&h, src);
        let report = h.relocate_cell(src, dst).expect("relocation succeeds");
        h.run_cycles(20).expect("clean");

        println!("F4: {title}");
        println!(
            "{:<24} {:>8} {:>10} {:>10}",
            "step", "frames", "wait CLK", "ms"
        );
        rule(56);
        for s in &report.steps {
            let ms = cost
                .interface
                .seconds_for_bits(cost.step_bits(h.device().part(), &s.frames))
                * 1e3;
            println!(
                "{:<24} {:>8} {:>10} {:>10.2}",
                s.step.to_string(),
                s.frames.len(),
                s.wait_cycles,
                ms
            );
        }
        rule(56);
        let total = cost.relocation_cost(h.device().part(), &report);
        println!(
            "total: {} steps, {} frames, {:.1} ms; transparent: {}\n",
            report.steps.len(),
            report.frames_total(),
            total.millis(),
            h.transparent()
        );
        assert!(h.transparent());
    }
}
