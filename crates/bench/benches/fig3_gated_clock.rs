//! F3 — Fig. 3: gated-clock (and asynchronous) relocation with the
//! auxiliary relocation circuit, plus the ablation that removes it.
//!
//! The paper's problem statement: with a gated clock "the previous method
//! does not ensure that the CLB replica captures the correct state
//! information, because CE may not be active during the relocation
//! procedure." The auxiliary circuit (OR gate + 2:1 mux) transfers the
//! state while staying coherent if CE fires mid-transfer.
//!
//! Adversarial CE schedules exercise both hazards: CE idle throughout the
//! move (state must be transferred explicitly) and CE firing mid-transfer
//! (coherency). With the circuit: transparent. Without (ablation):
//! observable corruption whenever CE was idle.

use rtm_bench::harness::{build_harness, nearby_free_slot, rule, sequential_cells};
use rtm_core::relocation::RelocationOptions;
use rtm_netlist::itc99::{self, Variant};

/// CE schedules: the harness input 0 gates every storage element of the
/// gated variants (remaining inputs are pseudo-random data).
#[derive(Clone, Copy)]
enum CeSchedule {
    IdleDuringMove,
    FiringMidMove,
}

fn run(variant: Variant, schedule: CeSchedule, skip_aux: bool) -> (usize, bool) {
    let mut corrupted = 0usize;
    let mut moves = 0usize;
    for name in ["b01", "b02", "b06"] {
        let netlist = itc99::generate(itc99::profile(name).expect("known"), variant);
        let width = netlist.inputs().len();
        let (_, mut h) = build_harness(&netlist);
        // Warm up with CE active so the FFs hold live state.
        let mut active = vec![true; width];
        active[1..].iter_mut().for_each(|b| *b = false);
        h.set_stimulus_override(Some(active.clone()));
        h.run_cycles(10).expect("clean");

        for i in sequential_cells(&h).into_iter().take(3) {
            match schedule {
                CeSchedule::IdleDuringMove => {
                    let mut idle = vec![false; width];
                    if width > 1 {
                        idle[1] = true; // wiggle a data input
                    }
                    h.set_stimulus_override(Some(idle));
                }
                CeSchedule::FiringMidMove => {
                    h.set_stimulus_override(None); // pseudo-random, CE toggles
                }
            }
            let src = h.placed().cell_loc(i);
            let dst = nearby_free_slot(&h, src);
            let opts = RelocationOptions {
                skip_aux,
                ..Default::default()
            };
            h.relocate_cell_with(src, dst, &opts)
                .expect("relocation succeeds");
            moves += 1;
            // Re-enable CE and give corruption a chance to surface.
            h.set_stimulus_override(Some(active.clone()));
            h.run_cycles(8).expect("clean");
        }
        h.set_stimulus_override(None);
        h.run_cycles(20).expect("clean");
        if !h.transparent() {
            corrupted += 1;
        }
    }
    (moves, corrupted == 0)
}

fn main() {
    println!("F3: gated-clock/asynchronous relocation — auxiliary circuit vs ablation");
    println!(
        "{:<14} {:<18} {:<10} {:>7} {:>13}",
        "class", "CE schedule", "aux", "moves", "transparent"
    );
    rule(66);
    for (variant, vname) in [
        (Variant::GatedClock, "gated-clock"),
        (Variant::Asynchronous, "asynchronous"),
    ] {
        for (schedule, sname) in [
            (CeSchedule::IdleDuringMove, "idle during move"),
            (CeSchedule::FiringMidMove, "firing mid-move"),
        ] {
            for (skip, aname) in [(false, "with"), (true, "WITHOUT")] {
                let (moves, clean) = run(variant, schedule, skip);
                println!(
                    "{:<14} {:<18} {:<10} {:>7} {:>13}",
                    vname, sname, aname, moves, clean
                );
            }
        }
    }
    rule(66);
    println!(
        "Expected shape: every `with`-aux row transparent; the ablation rows\n\
         with CE idle must NOT be (the auxiliary circuit is load-bearing)."
    );
}
