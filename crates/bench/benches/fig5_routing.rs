//! F5 — Fig. 5: two-phase relocation of routing resources. Nets of
//! growing length are rerouted live (duplicate → parallel → retire);
//! connectivity is checked at every phase and the freed resources are
//! verified reusable.

use rtm_core::relocation::relocate_sink_path;
use rtm_fpga::geom::ClbCoord;
use rtm_fpga::part::Part;
use rtm_fpga::routing::{RouteNode, Wire};
use rtm_fpga::Device;
use rtm_sim::route::NetDb;

fn main() {
    println!("F5: two-phase routing relocation (XCV200)");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "span (CLBs)", "old ps", "new ps", "dup frames", "ret frames", "ok"
    );
    for span in [1u16, 2, 4, 8, 16, 24] {
        let mut dev = Device::new(Part::Xcv200);
        let mut db = NetDb::new();
        let source = RouteNode::new(ClbCoord::new(10, 2), Wire::CellOut(0));
        let sink = RouteNode::new(ClbCoord::new(10, 2 + span), Wire::CellIn(0, 0));
        let net = db
            .route_net(&mut dev, source, &[sink], None)
            .expect("routes");
        let mut stayed_connected = true;
        let report = relocate_sink_path(&mut dev, &mut db, net, sink, None, |d| {
            stayed_connected &= d.sinks_of(source).contains(&sink);
        })
        .expect("reroute succeeds");
        let still = dev.sinks_of(source).contains(&sink);
        println!(
            "{:<12} {:>10} {:>10} {:>12} {:>12} {:>10}",
            span,
            report.old_delay_ps,
            report.new_delay_ps,
            report.duplicate_frames.len(),
            report.retire_frames.len(),
            stayed_connected && still
        );
        assert!(stayed_connected && still);
    }
    println!();
    println!(
        "The sink stays reachable during and after the swap; the original\n\
         path's resources are retired and reusable (paper: \"first duplicated\n\
         … and then disconnected, becoming available to be reused\")."
    );
}
