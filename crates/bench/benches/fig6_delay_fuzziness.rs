//! F6 — Fig. 6: propagation delay while original and replica paths are
//! paralleled. The destination sees an interval of fuzziness equal to the
//! difference of the two path delays; the effective delay for transient
//! analysis is the longer of the two.

use rtm_core::relocation::relocate_sink_path;
use rtm_fpga::geom::ClbCoord;
use rtm_fpga::part::Part;
use rtm_fpga::routing::{RouteNode, Wire};
use rtm_fpga::Device;
use rtm_sim::route::NetDb;

fn main() {
    println!("F6: arrival window at the destination while paths are paralleled");
    println!(
        "{:<12} {:>10} {:>12} {:>14} {:>14}",
        "span (CLBs)", "orig ps", "replica ps", "fuzziness ps", "effective ps"
    );
    for span in [1u16, 3, 6, 9, 12, 18, 24, 30] {
        let mut dev = Device::new(Part::Xcv200);
        let mut db = NetDb::new();
        let source = RouteNode::new(ClbCoord::new(14, 2), Wire::CellOut(1));
        let sink = RouteNode::new(ClbCoord::new(14, 2 + span), Wire::CellIn(1, 2));
        let net = db
            .route_net(&mut dev, source, &[sink], None)
            .expect("routes");
        let report =
            relocate_sink_path(&mut dev, &mut db, net, sink, None, |_| {}).expect("reroutes");
        let t = report.parallel_timing();
        println!(
            "{:<12} {:>10} {:>12} {:>14} {:>14}",
            span,
            t.original_ps,
            t.replica_ps,
            t.fuzziness_ps(),
            t.effective_delay_ps()
        );
        assert_eq!(
            t.fuzziness_ps(),
            report.old_delay_ps.abs_diff(report.new_delay_ps)
        );
        assert_eq!(
            t.effective_delay_ps(),
            report.old_delay_ps.max(report.new_delay_ps)
        );
    }
    println!();
    println!(
        "fuzziness = |d_orig - d_replica|; effective = max(d_orig, d_replica)\n\
         (paper: \"the propagation delay associated to the parallel\n\
         interconnections shall be the longer of the two paths\")."
    );
}
