//! Criterion micro-benchmarks of the reproduction's own machinery:
//! relocation engine, router, partial-bitstream diffing and the device
//! simulator. These measure *our* implementation (wall time), not the
//! paper's quantities.

use criterion::{criterion_group, criterion_main, Criterion};
use rtm_bench::harness::{build_harness, nearby_free_slot, sequential_cells};
use rtm_bitstream::PartialBitstream;
use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_fpga::part::Part;
use rtm_fpga::routing::{RouteNode, Wire};
use rtm_fpga::Device;
use rtm_netlist::itc99::{self, Variant};
use rtm_netlist::techmap::map_to_luts;
use rtm_sim::design::implement;
use rtm_sim::devsim::DeviceSim;
use rtm_sim::route::NetDb;

fn bench_relocate_cell(c: &mut Criterion) {
    c.bench_function("relocate_free_running_cell", |b| {
        b.iter_batched(
            || {
                let netlist =
                    itc99::generate(itc99::profile("b02").expect("known"), Variant::FreeRunning);
                // Leak to satisfy the harness's borrow of the netlist; a
                // handful of netlists per benchmark run is negligible.
                let netlist: &'static _ = Box::leak(Box::new(netlist));
                let (_, mut h) = build_harness(netlist);
                h.run_cycles(5).expect("clean");
                let i = sequential_cells(&h)[0];
                let src = h.placed().cell_loc(i);
                let dst = nearby_free_slot(&h, src);
                (h, src, dst)
            },
            |(mut h, src, dst)| {
                h.relocate_cell(src, dst).expect("relocation succeeds");
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_router(c: &mut Criterion) {
    c.bench_function("route_20_tile_net", |b| {
        b.iter_batched(
            || (Device::new(Part::Xcv200), NetDb::new()),
            |(mut dev, mut db)| {
                let src = RouteNode::new(ClbCoord::new(5, 5), Wire::CellOut(0));
                let sink = RouteNode::new(ClbCoord::new(15, 15), Wire::CellIn(0, 1));
                db.route_net(&mut dev, src, &[sink], None).expect("routes");
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_partial_bitstream(c: &mut Criterion) {
    let netlist = itc99::generate(itc99::profile("b03").expect("known"), Variant::FreeRunning);
    let mapped = map_to_luts(&netlist).expect("maps");
    let mut dev = Device::new(Part::Xcv200);
    implement(&mut dev, &mapped, Rect::new(ClbCoord::new(1, 1), 18, 18)).expect("implements");
    let blank = Device::new(Part::Xcv200);
    c.bench_function("partial_bitstream_diff_b03", |b| {
        b.iter(|| {
            let p = PartialBitstream::diff(blank.config(), dev.config()).expect("diffs");
            criterion::black_box(p.frame_count());
        })
    });
}

fn bench_device_sim(c: &mut Criterion) {
    let netlist = itc99::generate(itc99::profile("b03").expect("known"), Variant::FreeRunning);
    let mapped = map_to_luts(&netlist).expect("maps");
    let mut dev = Device::new(Part::Xcv200);
    let placed =
        implement(&mut dev, &mapped, Rect::new(ClbCoord::new(1, 1), 18, 18)).expect("implements");
    let width = netlist.inputs().len();
    c.bench_function("device_sim_cycle_b03", |b| {
        let mut sim = DeviceSim::new(&dev, &placed);
        let inputs = vec![true; width];
        b.iter(|| sim.step(&dev, &inputs).expect("steps"))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_relocate_cell, bench_router, bench_partial_bitstream, bench_device_sim
);
criterion_main!(benches);
