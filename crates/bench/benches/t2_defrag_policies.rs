//! T2 — the policy comparison the paper's contribution enables: on-line
//! rearrangement executed with halting relocation (Diessel et al. [5])
//! versus dynamic (transparent) relocation, versus no rearrangement.
//!
//! The paper claims (§1, §5) that rearrangement raises the rate at which
//! waiting functions are allocated, and that — unlike [5] — executing the
//! moves with dynamic relocation imposes **no time overhead on the
//! running applications**. Both claims are measured here over stochastic
//! on-line workloads at increasing load factors.

use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_sched::policy::Policy;
use rtm_sched::scheduler::Scheduler;
use rtm_sched::workload::WorkloadParams;

fn main() {
    let arena = Rect::new(ClbCoord::new(0, 0), 28, 42);
    println!("T2: on-line scheduling under rearrangement policies (XCV200, 60-task workloads)");
    println!(
        "{:<8} {:<20} {:>10} {:>12} {:>12} {:>8} {:>10}",
        "load", "policy", "alloc@arr", "mean wait", "halt total", "moves", "util"
    );
    println!("{}", "-".repeat(86));
    for load in [1.0, 2.0, 4.0] {
        let params = WorkloadParams {
            n_tasks: 60,
            rows: (6, 14),
            cols: (6, 14),
            duration: (150_000, 600_000),
            seed: 2003,
            ..WorkloadParams::default()
        }
        .with_load_factor(load);
        let tasks = params.generate();
        for policy in Policy::ALL {
            let m = Scheduler::new(arena, policy).run(&tasks);
            println!(
                "{:<8} {:<20} {:>9.1}% {:>10.1}ms {:>10.1}ms {:>8} {:>9.1}%",
                format!("{load}x"),
                policy.to_string(),
                m.immediate_rate * 100.0,
                m.mean_wait / 1000.0,
                m.total_halt_time as f64 / 1000.0,
                m.moves,
                m.utilisation * 100.0,
            );
        }
        println!();
    }
    println!(
        "Expected shape: rearranging policies allocate more tasks on arrival\n\
         than no-rearrange; transparent-reloc shows ZERO halt time while\n\
         halt-rearrange charges every moved task its own move time (the\n\
         paper's advantage over Diessel et al. [5])."
    );
}
