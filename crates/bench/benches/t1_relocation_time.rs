//! T1 — the paper's §2 number: "the average relocation time of each CLB
//! implementing synchronous gated-clock circuits is about **22.6 ms**,
//! when the Boundary Scan infrastructure is used to perform the
//! reconfiguration, at a test clock frequency of 20 MHz."
//!
//! Regenerates that figure from first principles — procedure steps →
//! frames → column writes → interface bits → seconds — averaged over the
//! ITC'99-style suite with nearby destinations (the paper's §3
//! recommendation), and sweeps the knobs the paper holds fixed:
//! relocation class, TCK frequency, configuration interface and tool
//! write granularity (DESIGN.md ablations 1 and 5).

use rtm_bench::harness::{build_harness, distant_free_slot, nearby_free_slot, sequential_cells};
use rtm_core::cost::{CostModel, WriteGranularity};
use rtm_jtag::timing::ConfigInterface;
use rtm_netlist::itc99::{self, Variant};

fn average_ms(
    variant: Variant,
    cost: &CostModel,
    distance: Option<u16>,
    moves_per_circuit: usize,
) -> (f64, usize) {
    let mut total_ms = 0.0;
    let mut moves = 0usize;
    for name in ["b01", "b02", "b06", "b08", "b10"] {
        let netlist = itc99::generate(itc99::profile(name).expect("known"), variant);
        let (_, mut h) = build_harness(&netlist);
        h.run_cycles(20).expect("clean run");
        for i in sequential_cells(&h).into_iter().take(moves_per_circuit) {
            let src = h.placed().cell_loc(i);
            let dst = match distance {
                None => nearby_free_slot(&h, src),
                Some(d) => distant_free_slot(&h, src, d),
            };
            let report = h.relocate_cell(src, dst).expect("relocation succeeds");
            total_ms += cost.relocation_cost(h.device().part(), &report).millis();
            moves += 1;
            h.run_cycles(5).expect("clean run");
        }
        assert!(
            h.transparent(),
            "{name} {variant} relocations must be transparent"
        );
    }
    (total_ms / moves as f64, moves)
}

fn main() {
    println!("T1: average CLB relocation time (paper: 22.6 ms gated-clock, 20 MHz Boundary Scan)");
    println!();

    let paper = CostModel::paper_default();
    println!("per relocation class (column-granular tool, Boundary Scan @ 20 MHz, nearby moves):");
    println!("{:<16} {:>8} {:>14}", "class", "moves", "avg ms/CLB");
    for (label, variant) in [
        ("free-running", Variant::FreeRunning),
        ("gated-clock", Variant::GatedClock),
        ("asynchronous", Variant::Asynchronous),
    ] {
        let (ms, n) = average_ms(variant, &paper, None, 3);
        println!("{label:<16} {n:>8} {ms:>14.1}");
    }
    println!();

    println!("TCK sweep (gated-clock class):");
    println!("{:<16} {:>14}", "TCK (MHz)", "avg ms/CLB");
    for mhz in [5u64, 10, 20, 33, 66] {
        let model = CostModel {
            granularity: WriteGranularity::Column,
            interface: ConfigInterface::boundary_scan(mhz * 1_000_000),
        };
        let (ms, _) = average_ms(Variant::GatedClock, &model, None, 2);
        println!("{mhz:<16} {ms:>14.1}");
    }
    println!();

    println!("interface / tool-granularity ablation (gated-clock, 20 MHz-class ports):");
    println!("{:<34} {:>14}", "configuration", "avg ms/CLB");
    for (label, model) in [
        ("BoundaryScan 20MHz, column", CostModel::paper_default()),
        (
            "BoundaryScan 20MHz, frame",
            CostModel::frame_granular(ConfigInterface::boundary_scan(20_000_000)),
        ),
        (
            "SelectMAP 50MHz, column",
            CostModel {
                granularity: WriteGranularity::Column,
                interface: ConfigInterface::select_map(50_000_000),
            },
        ),
        (
            "SelectMAP 50MHz, frame",
            CostModel::frame_granular(ConfigInterface::select_map(50_000_000)),
        ),
    ] {
        let (ms, _) = average_ms(Variant::GatedClock, &model, None, 2);
        println!("{label:<34} {ms:>14.2}");
    }
    println!();

    println!("move-distance ablation (gated-clock, paper model; paper: keep moves nearby):");
    println!("{:<16} {:>14}", "distance", "avg ms/CLB");
    let (near, _) = average_ms(Variant::GatedClock, &paper, None, 2);
    println!("{:<16} {near:>14.1}", "nearby");
    for d in [5u16, 10, 20] {
        let (ms, _) = average_ms(Variant::GatedClock, &paper, Some(d), 2);
        println!("{:<16} {ms:>14.1}", format!("~{d} CLBs"));
    }
}
