//! F2 — Fig. 2 / §2 experiment: the two-phase relocation procedure on
//! free-running synchronous circuits.
//!
//! "Several relocation experiments were carried out in a group of
//! circuits from the ITC'99 Benchmark Circuits … implemented in a Virtex
//! XCV200 … No loss of information or functional disturbance was observed
//! during the execution of these experiments."
//!
//! For each circuit of the suite we relocate a sample of its live cells
//! (every sequential cell plus a slice of the combinational ones) while a
//! lock-step golden-model comparison runs, and report the paper's
//! observables: output glitches and state loss (both must be zero), plus
//! the frame traffic per move.

use rtm_bench::harness::{build_harness, nearby_free_slot, rule, sequential_cells};
use rtm_core::cost::CostModel;
use rtm_netlist::itc99::{self, Variant};

fn main() {
    let cost = CostModel::paper_default();
    println!("F2: two-phase relocation of free-running ITC'99 circuits (XCV200)");
    println!(
        "{:<10} {:>6} {:>7} {:>9} {:>10} {:>9} {:>9}",
        "circuit", "cells", "moves", "frames/mv", "ms/mv", "glitches", "diverged"
    );
    rule(68);

    let mut grand_moves = 0usize;
    let mut all_clean = true;
    for name in ["b01", "b02", "b03", "b06", "b08", "b09", "b10"] {
        let netlist = itc99::generate(itc99::profile(name).expect("known"), Variant::FreeRunning);
        let (_, mut h) = build_harness(&netlist);
        h.run_cycles(40).expect("clean run");

        // Every FF cell plus every 5th combinational cell.
        let mut victims = sequential_cells(&h);
        victims.extend(
            (0..h.placed().design.cells.len())
                .filter(|i| !h.placed().design.cells[*i].storage.is_sequential())
                .step_by(5),
        );
        victims.truncate(12);

        let mut frames = 0usize;
        let mut ms = 0.0;
        for &i in &victims {
            let src = h.placed().cell_loc(i);
            let dst = nearby_free_slot(&h, src);
            let report = h.relocate_cell(src, dst).expect("relocation succeeds");
            frames += report.frames_total();
            ms += cost.relocation_cost(h.device().part(), &report).millis();
            h.run_cycles(6).expect("clean run");
        }
        h.run_cycles(40).expect("clean run");
        let n = victims.len();
        grand_moves += n;
        all_clean &= h.transparent();
        println!(
            "{:<10} {:>6} {:>7} {:>9.1} {:>10.1} {:>9} {:>9}",
            name,
            h.placed().design.cells.len(),
            n,
            frames as f64 / n as f64,
            ms / n as f64,
            h.glitches().len(),
            h.divergences().len(),
        );
    }
    rule(68);
    println!(
        "{grand_moves} relocations executed; transparency {} (paper: \"no loss of\n\
         information or functional disturbance was observed\")",
        if all_clean { "CONFIRMED" } else { "VIOLATED" }
    );
    assert!(all_clean);
}
