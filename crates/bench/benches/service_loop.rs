//! service_loop — the runtime service under its three trace scenarios,
//! swept over defragmentation thresholds.
//!
//! Where T2/T3 evaluate the *planner* on pure area bookkeeping, this
//! harness drives the whole stack: every admission is a real load
//! (placement, routing, configuration frames) and every defrag cycle
//! relocates running functions with the staged two-phase procedure.
//! Reported per scenario/threshold: admission rate, defrag cycles,
//! relocation traffic, reconfiguration time, and the fragmentation the
//! service tolerated.

use rtm_fpga::part::Part;
use rtm_service::trace::Scenario;
use rtm_service::{RuntimeService, ServiceConfig};

fn main() {
    let part = Part::Xcv50;
    println!("service_loop: trace-driven service on {part}, threshold sweep");
    println!(
        "{:<24} {:>9} {:>9} {:>7} {:>7} {:>8} {:>11} {:>10} {:>10}",
        "scenario",
        "threshold",
        "admitted",
        "defrag",
        "moves",
        "frames",
        "reconf ms",
        "peak frag",
        "final frag"
    );
    println!("{}", "-".repeat(104));
    for scenario in Scenario::ALL {
        for threshold in [0.3, 0.5, 2.0] {
            let trace = scenario.trace(part, 42);
            let config = ServiceConfig::default()
                .with_part(part)
                .with_frag_threshold(threshold);
            let mut service = RuntimeService::new(config);
            let report = service.run(&trace).expect("service loop stays up");
            let label = if threshold > 1.0 {
                "off".to_string()
            } else {
                format!("{threshold:.1}")
            };
            println!(
                "{:<24} {:>9} {:>7}/{:<2} {:>7} {:>7} {:>8} {:>11.1} {:>10.3} {:>10.3}",
                scenario.name(),
                label,
                report.admitted,
                report.submitted,
                report.defrag_cycles,
                report.function_moves,
                report.frames_written,
                report.reconfig_ms,
                report.peak_frag(),
                report.final_frag.map(|m| m.fragmentation()).unwrap_or(0.0),
            );
        }
    }
    println!();
    println!(
        "Expected shape: with the trigger off, the adversarial trace leaves the\n\
         array shattered (admissions survive only through load-time\n\
         rearrangement); lower thresholds trade relocation traffic (frames,\n\
         reconfiguration ms) for consistently low fragmentation — paid with\n\
         zero halt time for the moved functions, which is the paper's point."
    );
}
