//! F1 — Fig. 1: temporal/spatial scheduling of applications on one
//! device, with reconfiguration intervals hidden by swapping functions in
//! advance, and delays appearing as the degree of parallelism grows.
//!
//! The figure is qualitative; this harness makes it quantitative: the
//! same application set (A: 2 fns, B: 2 fns, C: 4 fns, total area > the
//! device) is scheduled at increasing degrees of parallelism. Reported
//! per level: makespan, stall time (reconfiguration *not* hidden) and
//! mean utilisation. The paper's claim — rt hidden behind execution until
//! parallelism exhausts free space — appears as zero stalls at low
//! parallelism and growing stalls past the knee.

use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_place::alloc::Strategy;
use rtm_place::TaskArena;
use rtm_sched::policy::BOUNDARY_SCAN_US_PER_CLB;

#[derive(Clone, Copy)]
struct Func {
    rows: u16,
    cols: u16,
    exec_us: u64,
}

fn functions() -> Vec<Vec<Func>> {
    // Sized so that one application fits alone comfortably, two fit
    // together, and three concurrently exceed the array (28x42 = 1176):
    // the Fig. 1 trade-off becomes visible as stalls at parallelism 3.
    vec![
        vec![
            Func {
                rows: 20,
                cols: 28,
                exec_us: 400_000,
            },
            Func {
                rows: 20,
                cols: 26,
                exec_us: 350_000,
            },
        ],
        vec![
            Func {
                rows: 16,
                cols: 22,
                exec_us: 300_000,
            },
            Func {
                rows: 16,
                cols: 24,
                exec_us: 450_000,
            },
        ],
        vec![
            Func {
                rows: 12,
                cols: 18,
                exec_us: 200_000,
            },
            Func {
                rows: 12,
                cols: 20,
                exec_us: 250_000,
            },
            Func {
                rows: 12,
                cols: 18,
                exec_us: 200_000,
            },
            Func {
                rows: 12,
                cols: 16,
                exec_us: 220_000,
            },
        ],
    ]
}

/// Simulates the Fig. 1 schedule with `par` applications running
/// concurrently (the rest are queued). Returns (makespan_us, stall_us,
/// mean_utilisation).
fn schedule(par: usize) -> (u64, u64, f64) {
    let apps = functions();
    let bounds = Rect::new(ClbCoord::new(0, 0), 28, 42);
    let mut arena = TaskArena::new(bounds);
    let mut next_fn = vec![0usize; apps.len()];
    let mut busy_until = vec![0u64; apps.len()];
    // At most `par` applications are active concurrently; the rest wait
    // their turn (degree-of-parallelism knob of Fig. 1).
    let mut active: Vec<usize> = (0..par.min(apps.len())).collect();
    let mut waiting: Vec<usize> = (par.min(apps.len())..apps.len()).collect();
    let mut running: Vec<(u64, usize, u64)> = Vec::new();
    let mut now = 0u64;
    let mut stall = 0u64;
    let mut task = 0u64;
    let mut area_time: u128 = 0;
    let mut last = 0u64;
    let mut guard = 0;
    loop {
        guard += 1;
        assert!(guard < 10_000, "schedule failed to converge");
        if active.is_empty() && running.is_empty() {
            break;
        }
        // Start the next function of every idle active application.
        for &i in &active {
            if next_fn[i] >= apps[i].len() || busy_until[i] > now {
                continue;
            }
            let f = apps[i][next_fn[i]];
            if arena
                .allocate(task, f.rows, f.cols, Strategy::BestFit)
                .is_ok()
            {
                running.push((task, i, now + f.exec_us));
                busy_until[i] = now + f.exec_us;
                next_fn[i] += 1;
                task += 1;
            } else {
                // Blocked: the reconfiguration interval can no longer be
                // hidden behind execution.
                stall += f.rows as u64 * f.cols as u64 * BOUNDARY_SCAN_US_PER_CLB / 1000;
            }
        }
        // Retire finished applications, admit waiting ones.
        active.retain(|&i| {
            let finished = next_fn[i] >= apps[i].len() && busy_until[i] <= now;
            !finished
        });
        while active.len() < par && !waiting.is_empty() {
            active.push(waiting.remove(0));
        }
        // Advance to the next completion, integrating utilisation over
        // the busy interval before releasing.
        if let Some(&(tid, _, finish)) = running.iter().min_by_key(|(_, _, f)| *f) {
            now = now.max(finish);
            let occ: u128 = arena.tasks().values().map(|r| r.area() as u128).sum();
            area_time += occ * (now - last) as u128;
            last = now;
            arena.release(tid).expect("allocated");
            running.retain(|(t, _, _)| *t != tid);
        } else if !active.is_empty() {
            // Active apps exist but nothing runs: everyone is blocked on
            // space that will never free (cannot happen with these sizes),
            // or freshly admitted; give the loop a chance to start them.
            now += 10_000;
        }
    }
    let util = area_time as f64 / (1176u128 * now.max(1) as u128) as f64;
    (now, stall, util)
}

fn main() {
    println!("F1: virtual-hardware schedule vs degree of parallelism (XCV200)");
    println!(
        "{:<14} {:>14} {:>12} {:>12}",
        "parallelism", "makespan (ms)", "stall (ms)", "util (%)"
    );
    for par in 1..=3 {
        let (makespan, stall, util) = schedule(par);
        println!(
            "{:<14} {:>14.1} {:>12.1} {:>12.1}",
            par,
            makespan as f64 / 1000.0,
            stall as f64 / 1000.0,
            util * 100.0
        );
    }
    println!();
    println!(
        "Expected shape: makespan shrinks with parallelism while free space\n\
         absorbs the demand; stalls (unhidden reconfiguration) appear once\n\
         concurrent area demand exceeds the device."
    );
}
