//! T3 — fragmentation over time (§1's motivation): "unallocated areas
//! tend to become so small that they fail to satisfy any request …
//! leading to a fragmentation of the FPGA logic space."
//!
//! A churning allocate/release workload runs under three policies:
//! no defragmentation, periodic compaction, and the paper's usage —
//! **on-demand rearrangement** when an allocation fails despite
//! sufficient total free area. Reported: mean fragmentation index,
//! false rejections (the paper's problem case) and how many of them the
//! rearrangement rescued.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_place::alloc::Strategy;
use rtm_place::defrag;
use rtm_place::TaskArena;

#[derive(Clone, Copy, PartialEq)]
enum DefragPolicy {
    Never,
    Periodic(usize),
    OnDemand,
}

struct Outcome {
    mean_frag: f64,
    min_largest: u32,
    false_rejections: usize,
    rescued: usize,
    moves: usize,
}

fn churn(policy: DefragPolicy, epochs: usize, seed: u64) -> Outcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arena = TaskArena::new(Rect::new(ClbCoord::new(0, 0), 28, 42));
    let mut live: Vec<u64> = Vec::new();
    let mut next_id = 0u64;
    let mut out = Outcome {
        mean_frag: 0.0,
        min_largest: u32::MAX,
        false_rejections: 0,
        rescued: 0,
        moves: 0,
    };
    for epoch in 0..epochs {
        live.retain(|id| {
            if rng.gen_bool(0.33) {
                arena.release(*id).expect("live");
                false
            } else {
                true
            }
        });
        for _ in 0..4 {
            let rows = rng.gen_range(4..=12);
            let cols = rng.gen_range(4..=12);
            let admitted = match arena.allocate(next_id, rows, cols, Strategy::BestFit) {
                Ok(_) => true,
                Err(_) => {
                    let enough_area = arena.arena().free_cells() >= rows as u32 * cols as u32;
                    if enough_area {
                        out.false_rejections += 1;
                    }
                    if enough_area && policy == DefragPolicy::OnDemand {
                        // The paper's move: rearrange running functions to
                        // open a contiguous region, then admit.
                        if let Some(plan) = defrag::make_room(&arena, rows, cols) {
                            for mv in &plan {
                                arena.relocate(mv.id, mv.to).expect("planned");
                            }
                            out.moves += plan.len();
                            if arena
                                .allocate(next_id, rows, cols, Strategy::BestFit)
                                .is_ok()
                            {
                                out.rescued += 1;
                                true
                            } else {
                                false
                            }
                        } else {
                            false
                        }
                    } else {
                        false
                    }
                }
            };
            if admitted {
                live.push(next_id);
                next_id += 1;
            }
        }
        if let DefragPolicy::Periodic(k) = policy {
            if epoch % k == k - 1 {
                out.moves += defrag::compact(&mut arena).len();
            }
        }
        let m = arena.fragmentation();
        out.mean_frag += m.fragmentation() / epochs as f64;
        out.min_largest = out.min_largest.min(m.largest_rect);
    }
    out
}

fn main() {
    println!("T3: fragmentation under churn — no / periodic / on-demand rearrangement");
    println!(
        "{:<22} {:>10} {:>13} {:>14} {:>9} {:>7}",
        "policy", "mean frag", "min lg. rect", "false rejects", "rescued", "moves"
    );
    println!("{}", "-".repeat(80));
    for (label, policy) in [
        ("never defragment", DefragPolicy::Never),
        ("periodic (every 4)", DefragPolicy::Periodic(4)),
        ("on-demand (paper)", DefragPolicy::OnDemand),
    ] {
        let mut acc = Outcome {
            mean_frag: 0.0,
            min_largest: u32::MAX,
            false_rejections: 0,
            rescued: 0,
            moves: 0,
        };
        for seed in 0..5u64 {
            let o = churn(policy, 40, 100 + seed);
            acc.mean_frag += o.mean_frag / 5.0;
            acc.min_largest = acc.min_largest.min(o.min_largest);
            acc.false_rejections += o.false_rejections;
            acc.rescued += o.rescued;
            acc.moves += o.moves;
        }
        println!(
            "{label:<22} {:>10.3} {:>13} {:>14} {:>9} {:>7}",
            acc.mean_frag, acc.min_largest, acc.false_rejections, acc.rescued, acc.moves
        );
    }
    println!();
    println!(
        "Expected shape: churn fragments the array until requests fail despite\n\
         sufficient free area (false rejects); the paper's on-demand\n\
         rearrangement rescues (nearly) all of them, at the price of\n\
         relocation moves — free for the moved functions thanks to dynamic\n\
         relocation (see F2/F3/T2)."
    );
}
