//! Crate-level smoke test: the shared bench harness must be able to
//! stand up a transparency harness for a small benchmark.

use rtm_bench::harness::{build_harness, nearby_free_slot, sequential_cells};
use rtm_netlist::itc99::{self, Variant};

#[test]
fn harness_builds_and_finds_slots_for_b02() {
    let netlist = itc99::generate(itc99::profile("b02").unwrap(), Variant::FreeRunning);
    let (mapped, mut h) = build_harness(&netlist);
    assert!(!mapped.is_empty());
    h.run_cycles(5).unwrap();
    let seq = sequential_cells(&h);
    assert!(!seq.is_empty(), "b02 has flip-flops");
    let src = h.placed().cell_loc(seq[0]);
    let dst = nearby_free_slot(&h, src);
    assert_ne!(src, dst);
}
