//! Crate-level smoke tests for the on-line scheduler.

use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_sched::policy::Policy;
use rtm_sched::scheduler::Scheduler;
use rtm_sched::workload::WorkloadParams;

#[test]
fn workload_generation_is_deterministic() {
    let a = WorkloadParams::default().generate();
    let b = WorkloadParams::default().generate();
    assert_eq!(a, b);
    assert!(!a.is_empty());
    let c = WorkloadParams::default().with_seed(999).generate();
    assert_ne!(a, c);
}

#[test]
fn every_policy_schedules_a_small_workload() {
    let tasks = WorkloadParams::default().generate();
    let bounds = Rect::new(ClbCoord::new(0, 0), 28, 42);
    for policy in Policy::ALL {
        let metrics = Scheduler::new(bounds, policy).run(&tasks);
        assert!(metrics.makespan > 0, "{policy}: empty schedule");
    }
}

#[test]
fn transparent_relocation_never_loses_to_halting() {
    let tasks = WorkloadParams::default().with_load_factor(2.0).generate();
    let bounds = Rect::new(ClbCoord::new(0, 0), 16, 16);
    let halt = Scheduler::new(bounds, Policy::HaltRearrange).run(&tasks);
    let transparent = Scheduler::new(bounds, Policy::TransparentReloc).run(&tasks);
    // Moved tasks keep running under transparent relocation, so total
    // halt time can only shrink (the paper's Table 2 claim).
    assert!(transparent.total_halt_time <= halt.total_halt_time);
}
