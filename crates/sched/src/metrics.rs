//! Aggregate metrics of one scheduling run (the T2 report row).

use crate::task::{Micros, TaskOutcome};
use std::fmt;

/// Aggregated results of a scheduling run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Tasks completed.
    pub completed: usize,
    /// Fraction of tasks placed the instant they arrived.
    pub immediate_rate: f64,
    /// Mean waiting time (µs).
    pub mean_wait: f64,
    /// Maximum waiting time (µs).
    pub max_wait: Micros,
    /// Total halt time inflicted on *running* tasks by rearrangements
    /// (µs) — zero for transparent relocation, the paper's claim.
    pub total_halt_time: Micros,
    /// Number of task moves executed.
    pub moves: usize,
    /// Total CLBs relocated.
    pub cells_moved: u64,
    /// Time the last task finished (µs).
    pub makespan: Micros,
    /// Time-averaged CLB utilisation in `[0, 1]`.
    pub utilisation: f64,
    /// Per-task outcomes.
    pub outcomes: Vec<TaskOutcome>,
}

impl RunMetrics {
    /// Builds the aggregate from per-task outcomes plus run-level
    /// counters.
    pub fn from_outcomes(
        outcomes: Vec<TaskOutcome>,
        moves: usize,
        cells_moved: u64,
        utilisation: f64,
    ) -> Self {
        let completed = outcomes.len();
        let immediate = outcomes.iter().filter(|o| o.immediate).count();
        let total_wait: u128 = outcomes.iter().map(|o| o.wait() as u128).sum();
        RunMetrics {
            completed,
            immediate_rate: if completed == 0 {
                1.0
            } else {
                immediate as f64 / completed as f64
            },
            mean_wait: if completed == 0 {
                0.0
            } else {
                total_wait as f64 / completed as f64
            },
            max_wait: outcomes.iter().map(|o| o.wait()).max().unwrap_or(0),
            total_halt_time: outcomes.iter().map(|o| o.halt_time).sum(),
            moves,
            cells_moved,
            makespan: outcomes.iter().map(|o| o.finish).max().unwrap_or(0),
            utilisation,
            outcomes,
        }
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks | immediate {:.1}% | wait mean {:.1}ms max {:.1}ms | halt {:.1}ms | {} moves ({} CLBs) | util {:.1}%",
            self.completed,
            self.immediate_rate * 100.0,
            self.mean_wait / 1000.0,
            self.max_wait as f64 / 1000.0,
            self.total_halt_time as f64 / 1000.0,
            self.moves,
            self.cells_moved,
            self.utilisation * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;

    fn outcome(id: u64, arrival: u64, start: u64, finish: u64, halt: u64) -> TaskOutcome {
        TaskOutcome {
            spec: TaskSpec {
                id,
                rows: 2,
                cols: 2,
                arrival,
                duration: finish - start - halt,
            },
            start,
            finish,
            halt_time: halt,
            immediate: start == arrival,
        }
    }

    #[test]
    fn aggregates() {
        let m = RunMetrics::from_outcomes(
            vec![outcome(0, 0, 0, 100, 0), outcome(1, 10, 40, 200, 20)],
            3,
            12,
            0.5,
        );
        assert_eq!(m.completed, 2);
        assert!((m.immediate_rate - 0.5).abs() < 1e-9);
        assert!((m.mean_wait - 15.0).abs() < 1e-9);
        assert_eq!(m.max_wait, 30);
        assert_eq!(m.total_halt_time, 20);
        assert_eq!(m.makespan, 200);
        assert!(m.to_string().contains("2 tasks"));
    }

    #[test]
    fn empty_run() {
        let m = RunMetrics::from_outcomes(vec![], 0, 0, 0.0);
        assert_eq!(m.completed, 0);
        assert_eq!(m.mean_wait, 0.0);
        assert_eq!(m.immediate_rate, 1.0);
    }
}
