//! Rearrangement policies: the paper versus its baselines.

use crate::task::Micros;
use std::fmt;

/// Default per-CLB relocation cost through the Boundary Scan port (µs),
/// the paper's measured 22.6 ms.
pub const BOUNDARY_SCAN_US_PER_CLB: Micros = 22_600;

/// What the scheduler may do when an arriving task does not fit.
///
/// # Examples
///
/// ```
/// use rtm_sched::Policy;
///
/// assert!(!Policy::NoRearrange.rearranges());
/// // Only the halting baseline charges moved tasks for their move.
/// assert_eq!(Policy::TransparentReloc.halt_time(10, 22_600), 0);
/// assert_eq!(Policy::HaltRearrange.halt_time(10, 22_600), 226_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Never rearrange: the task queues until departures open a hole.
    NoRearrange,
    /// Rearrange by halting the moved tasks while they are copied
    /// (Diessel et al.\[5\]): each moved task stops for its own move time.
    HaltRearrange,
    /// Rearrange with dynamic relocation (this paper): moved tasks keep
    /// running; only the incoming task waits for the moves to complete.
    TransparentReloc,
}

impl Policy {
    /// All policies, for sweeps.
    pub const ALL: [Policy; 3] = [
        Policy::NoRearrange,
        Policy::HaltRearrange,
        Policy::TransparentReloc,
    ];

    /// True if the policy may move running tasks.
    pub fn rearranges(&self) -> bool {
        !matches!(self, Policy::NoRearrange)
    }

    /// Halt time charged to a moved task of `cells` CLBs.
    pub fn halt_time(&self, cells: u32, us_per_clb: Micros) -> Micros {
        match self {
            Policy::HaltRearrange => cells as Micros * us_per_clb,
            _ => 0,
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Policy::NoRearrange => "no-rearrange",
            Policy::HaltRearrange => "halt-rearrange",
            Policy::TransparentReloc => "transparent-reloc",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halt_time_only_for_halting_policy() {
        assert_eq!(Policy::NoRearrange.halt_time(10, 100), 0);
        assert_eq!(Policy::TransparentReloc.halt_time(10, 100), 0);
        assert_eq!(Policy::HaltRearrange.halt_time(10, 100), 1000);
    }

    #[test]
    fn rearrange_flags() {
        assert!(!Policy::NoRearrange.rearranges());
        assert!(Policy::HaltRearrange.rearranges());
        assert!(Policy::TransparentReloc.rearranges());
        assert_eq!(Policy::ALL.len(), 3);
    }

    #[test]
    fn display() {
        assert_eq!(Policy::TransparentReloc.to_string(), "transparent-reloc");
    }
}
