//! The discrete-event on-line scheduler.
//!
//! Simulates the arrival → placement → (rearrangement) → departure life
//! cycle on a [`TaskArena`], charging rearrangement time according to the
//! selected [`Policy`]: under [`Policy::HaltRearrange`] a moved task's
//! completion slips by its own move time (it stopped running, as in
//! Diessel et al.\[5\]); under [`Policy::TransparentReloc`] it does not
//! (the paper's contribution) — only the *incoming* task waits for the
//! reconfiguration port to execute the moves.

use crate::admission::{AdmissionHook, AdmissionOutcome};
use crate::metrics::RunMetrics;
use crate::policy::{Policy, BOUNDARY_SCAN_US_PER_CLB};
use crate::task::{Micros, TaskOutcome, TaskSpec};
use rtm_fpga::geom::Rect;
use rtm_place::alloc::Strategy;
use rtm_place::defrag::{make_room, plan_cost};
use rtm_place::TaskArena;
use std::collections::{BTreeMap, VecDeque};

/// A running task's bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Running {
    spec: TaskSpec,
    start: Micros,
    finish: Micros,
    halt_time: Micros,
    immediate: bool,
}

/// The on-line scheduler. See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Scheduler {
    bounds: Rect,
    policy: Policy,
    strategy: Strategy,
    /// Relocation cost per CLB (µs); defaults to the paper's Boundary
    /// Scan figure.
    pub us_per_clb: Micros,
}

impl Scheduler {
    /// A scheduler over `bounds` with the given policy, first-fit
    /// placement and Boundary Scan move costs.
    pub fn new(bounds: Rect, policy: Policy) -> Self {
        Scheduler {
            bounds,
            policy,
            strategy: Strategy::BestFit,
            us_per_clb: BOUNDARY_SCAN_US_PER_CLB,
        }
    }

    /// Replaces the allocation strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replaces the per-CLB move cost (e.g. a SelectMAP-class port).
    pub fn with_move_cost(mut self, us_per_clb: Micros) -> Self {
        self.us_per_clb = us_per_clb;
        self
    }

    /// Runs the workload to completion and returns the metrics.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtm_sched::{Scheduler, Policy, workload::WorkloadParams};
    /// use rtm_fpga::geom::{ClbCoord, Rect};
    ///
    /// let tasks = WorkloadParams::default().generate();
    /// let arena = Rect::new(ClbCoord::new(0, 0), 28, 42);
    /// let metrics = Scheduler::new(arena, Policy::TransparentReloc).run(&tasks);
    /// assert_eq!(metrics.completed, tasks.len());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if a task is larger than the arena (it could never run).
    pub fn run(&self, tasks: &[TaskSpec]) -> RunMetrics {
        self.run_with_hook(tasks, &mut ())
    }

    /// Runs the workload like [`Scheduler::run`], invoking `hook` at
    /// every admission decision (see [`AdmissionOutcome`] for the
    /// reported cases). This is how external layers — reports, QoS
    /// accounting, the `rtm-service` runtime loop — observe the policy's
    /// choices without re-implementing the event loop.
    ///
    /// # Panics
    ///
    /// Panics if a task is larger than the arena (it could never run).
    pub fn run_with_hook(&self, tasks: &[TaskSpec], hook: &mut impl AdmissionHook) -> RunMetrics {
        for t in tasks {
            assert!(
                t.rows <= self.bounds.rows && t.cols <= self.bounds.cols,
                "{t} larger than the array"
            );
        }
        let mut arrivals: Vec<TaskSpec> = tasks.to_vec();
        arrivals.sort_by_key(|t| t.arrival);
        let mut arrivals: VecDeque<TaskSpec> = arrivals.into();

        let mut arena = TaskArena::new(self.bounds);
        let mut running: BTreeMap<u64, Running> = BTreeMap::new();
        let mut queue: VecDeque<TaskSpec> = VecDeque::new();
        let mut outcomes: Vec<TaskOutcome> = Vec::new();
        let mut moves = 0usize;
        let mut cells_moved = 0u64;
        let mut now: Micros = 0;
        let mut busy_area_time: u128 = 0;

        loop {
            // Next event time: earliest arrival or completion.
            let next_arrival = arrivals.front().map(|t| t.arrival);
            let next_finish = running.values().map(|r| r.finish).min();
            let next = match (next_arrival, next_finish) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(f)) => f,
                (Some(a), Some(f)) => a.min(f),
            };
            // Advance time, integrating utilisation.
            let occupied: u128 = arena.tasks().values().map(|r| r.area() as u128).sum();
            busy_area_time += occupied * (next - now) as u128;
            now = next;

            // Departures first: they can only help the queue.
            let finished: Vec<u64> = running
                .iter()
                .filter(|(_, r)| r.finish <= now)
                .map(|(id, _)| *id)
                .collect();
            for id in finished {
                let r = running.remove(&id).expect("present");
                arena.release(id).expect("running task is allocated");
                outcomes.push(TaskOutcome {
                    spec: r.spec,
                    start: r.start,
                    finish: r.finish,
                    halt_time: r.halt_time,
                    immediate: r.immediate,
                });
            }

            // Arrivals at this instant join the queue (FIFO).
            while arrivals.front().map(|t| t.arrival <= now).unwrap_or(false) {
                queue.push_back(arrivals.pop_front().expect("checked"));
            }

            // Serve the queue head-first; stop at the first task we
            // cannot place (FIFO fairness).
            while let Some(head) = queue.front().copied() {
                match self.try_place(
                    &mut arena,
                    &mut running,
                    head,
                    now,
                    &mut moves,
                    &mut cells_moved,
                ) {
                    Some(outcome) => {
                        hook.on_decision(now, &head, outcome);
                        queue.pop_front();
                    }
                    None => {
                        hook.on_decision(now, &head, AdmissionOutcome::Deferred);
                        break;
                    }
                }
            }
        }

        debug_assert!(queue.is_empty(), "all tasks eventually run");
        let total_area = self.bounds.area() as u128;
        let utilisation = if now == 0 {
            0.0
        } else {
            busy_area_time as f64 / (total_area * now as u128) as f64
        };
        outcomes.sort_by_key(|o| o.spec.id);
        RunMetrics::from_outcomes(outcomes, moves, cells_moved, utilisation)
    }

    /// Attempts to place `task` at time `now`, rearranging if the policy
    /// allows. Returns the admission outcome on success, `None` when the
    /// task must stay queued.
    fn try_place(
        &self,
        arena: &mut TaskArena,
        running: &mut BTreeMap<u64, Running>,
        task: TaskSpec,
        now: Micros,
        moves: &mut usize,
        cells_moved: &mut u64,
    ) -> Option<AdmissionOutcome> {
        let immediate_possible = !arena
            .arena()
            .candidate_origins(task.rows, task.cols)
            .is_empty();
        let mut start = now;
        let mut rearrangement: Option<(usize, u32)> = None;
        if !immediate_possible {
            if !self.policy.rearranges() {
                return None;
            }
            let plan = make_room(arena, task.rows, task.cols)?;
            debug_assert!(!plan.is_empty(), "fit check said no space");
            let cost = plan_cost(&plan);
            // Execute the plan: the reconfiguration port is busy for the
            // whole move traffic; the incoming task starts afterwards.
            let move_time = cost.cells as Micros * self.us_per_clb;
            for mv in &plan {
                arena.relocate(mv.id, mv.to).expect("planned move feasible");
                if let Some(r) = running.get_mut(&mv.id) {
                    let halt = self.policy.halt_time(mv.cells_moved(), self.us_per_clb);
                    r.halt_time += halt;
                    r.finish += halt;
                }
            }
            *moves += plan.len();
            *cells_moved += cost.cells as u64;
            rearrangement = Some((plan.len(), cost.cells));
            start = now + move_time;
        }
        let rect = arena
            .allocate(task.id, task.rows, task.cols, self.strategy)
            .ok()?;
        debug_assert_eq!(rect.area(), task.area());
        running.insert(
            task.id,
            Running {
                spec: task,
                start,
                finish: start + task.duration,
                halt_time: 0,
                // "Allocated on arrival" in the sense of Diessel et al.:
                // the task was admitted at its arrival event (possibly
                // after rearrangement), not parked in the queue.
                immediate: now == task.arrival,
            },
        );
        Some(match rearrangement {
            None => AdmissionOutcome::Immediate { region: rect },
            Some((moves, cells_moved)) => AdmissionOutcome::AfterRearrange {
                region: rect,
                moves,
                cells_moved,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadParams;
    use rtm_fpga::geom::ClbCoord;

    fn arena28x42() -> Rect {
        Rect::new(ClbCoord::new(0, 0), 28, 42)
    }

    fn light_workload() -> Vec<TaskSpec> {
        WorkloadParams {
            n_tasks: 30,
            ..WorkloadParams::default()
        }
        .generate()
    }

    #[test]
    fn all_tasks_complete_under_every_policy() {
        let tasks = light_workload();
        for policy in Policy::ALL {
            let m = Scheduler::new(arena28x42(), policy).run(&tasks);
            assert_eq!(m.completed, tasks.len(), "{policy}");
            assert!(m.makespan > 0);
        }
    }

    #[test]
    fn transparent_never_halts_but_halting_does() {
        // Heavy load forces rearrangements.
        let tasks = WorkloadParams {
            n_tasks: 80,
            mean_interarrival: 8_000.0,
            rows: (6, 14),
            cols: (6, 14),
            duration: (200_000, 800_000),
            seed: 3,
        }
        .generate();
        let transparent = Scheduler::new(arena28x42(), Policy::TransparentReloc).run(&tasks);
        assert_eq!(transparent.total_halt_time, 0);
        let halting = Scheduler::new(arena28x42(), Policy::HaltRearrange).run(&tasks);
        if halting.moves > 0 {
            assert!(
                halting.total_halt_time > 0,
                "halting policy must charge halts"
            );
        }
        assert!(
            transparent.moves > 0,
            "heavy load must trigger rearrangement"
        );
    }

    #[test]
    fn rearrangement_raises_allocation_rate_and_transparency_beats_halting() {
        let tasks = WorkloadParams {
            n_tasks: 60,
            mean_interarrival: 10_000.0,
            rows: (6, 13),
            cols: (6, 13),
            duration: (150_000, 600_000),
            seed: 11,
        }
        .generate();
        let none = Scheduler::new(arena28x42(), Policy::NoRearrange).run(&tasks);
        let halting = Scheduler::new(arena28x42(), Policy::HaltRearrange).run(&tasks);
        let transparent = Scheduler::new(arena28x42(), Policy::TransparentReloc).run(&tasks);
        // Rearrangement admits more tasks the instant they arrive —
        // Diessel's "rate at which waiting functions are allocated".
        assert!(
            transparent.immediate_rate >= none.immediate_rate,
            "transparent {:.2} vs none {:.2}",
            transparent.immediate_rate,
            none.immediate_rate
        );
        // Same plans, but halting charges moved tasks their move time:
        // total delay under transparency strictly dominates.
        let delay =
            |m: &crate::metrics::RunMetrics| -> u64 { m.outcomes.iter().map(|o| o.delay()).sum() };
        assert!(delay(&transparent) <= delay(&halting));
        assert_eq!(transparent.total_halt_time, 0);
        if halting.moves > 0 {
            assert!(halting.total_halt_time > 0);
        }
    }

    #[test]
    fn hook_sees_every_admission_and_rearrangements() {
        let tasks = WorkloadParams {
            n_tasks: 60,
            mean_interarrival: 8_000.0,
            rows: (6, 14),
            cols: (6, 14),
            duration: (200_000, 800_000),
            seed: 3,
        }
        .generate();
        let mut admitted = 0usize;
        let mut rearranged = 0usize;
        let mut deferred = 0usize;
        let m = Scheduler::new(arena28x42(), Policy::TransparentReloc).run_with_hook(
            &tasks,
            &mut |_now, _task: &TaskSpec, outcome: crate::admission::AdmissionOutcome| match outcome
            {
                crate::admission::AdmissionOutcome::Immediate { .. } => admitted += 1,
                crate::admission::AdmissionOutcome::AfterRearrange { moves, .. } => {
                    admitted += 1;
                    rearranged += moves;
                }
                crate::admission::AdmissionOutcome::Deferred => deferred += 1,
            },
        );
        assert_eq!(admitted, m.completed, "one admitted decision per task");
        assert_eq!(rearranged, m.moves, "hook sees the same move count");
        assert!(deferred > 0, "heavy load must defer someone");
    }

    #[test]
    fn sequential_tasks_run_back_to_back() {
        // Two tasks that each fill the device: strict serialisation.
        let tasks = vec![
            TaskSpec {
                id: 0,
                rows: 28,
                cols: 42,
                arrival: 0,
                duration: 100,
            },
            TaskSpec {
                id: 1,
                rows: 28,
                cols: 42,
                arrival: 0,
                duration: 100,
            },
        ];
        let m = Scheduler::new(arena28x42(), Policy::TransparentReloc).run(&tasks);
        assert_eq!(m.completed, 2);
        assert_eq!(m.makespan, 200);
        let waits: Vec<u64> = m.outcomes.iter().map(|o| o.wait()).collect();
        assert_eq!(waits, vec![0, 100]);
    }

    #[test]
    fn utilisation_bounded() {
        let tasks = light_workload();
        let m = Scheduler::new(arena28x42(), Policy::TransparentReloc).run(&tasks);
        assert!(m.utilisation > 0.0 && m.utilisation <= 1.0);
    }

    #[test]
    #[should_panic(expected = "larger than the array")]
    fn oversized_task_rejected() {
        let tasks = vec![TaskSpec {
            id: 0,
            rows: 64,
            cols: 64,
            arrival: 0,
            duration: 10,
        }];
        Scheduler::new(arena28x42(), Policy::NoRearrange).run(&tasks);
    }

    #[test]
    fn strategies_sweep_completes() {
        let tasks = light_workload();
        for s in Strategy::ALL {
            let m = Scheduler::new(arena28x42(), Policy::TransparentReloc)
                .with_strategy(s)
                .run(&tasks);
            assert_eq!(m.completed, tasks.len(), "{s}");
        }
    }

    #[test]
    fn faster_port_reduces_move_penalty() {
        let tasks = WorkloadParams {
            n_tasks: 60,
            mean_interarrival: 8_000.0,
            rows: (7, 14),
            cols: (7, 14),
            duration: (200_000, 700_000),
            seed: 5,
        }
        .generate();
        let slow = Scheduler::new(arena28x42(), Policy::TransparentReloc).run(&tasks);
        let fast = Scheduler::new(arena28x42(), Policy::TransparentReloc)
            .with_move_cost(BOUNDARY_SCAN_US_PER_CLB / 20)
            .run(&tasks);
        if slow.moves > 0 {
            assert!(fast.mean_wait <= slow.mean_wait);
        }
    }
}
