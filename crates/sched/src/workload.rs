//! Reproducible stochastic workloads (experiment T2/T3 input).

use crate::task::{Micros, TaskSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// Number of tasks.
    pub n_tasks: usize,
    /// Mean inter-arrival time (µs); arrivals are exponential.
    pub mean_interarrival: f64,
    /// Task rows drawn uniformly from this inclusive range.
    pub rows: (u16, u16),
    /// Task columns drawn uniformly from this inclusive range.
    pub cols: (u16, u16),
    /// Execution time (µs) drawn uniformly from this inclusive range.
    pub duration: (Micros, Micros),
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            n_tasks: 60,
            mean_interarrival: 40_000.0,
            rows: (4, 12),
            cols: (4, 12),
            duration: (50_000, 400_000),
            seed: 7,
        }
    }
}

impl WorkloadParams {
    /// A heavier load (shorter inter-arrival), keeping other defaults.
    pub fn with_load_factor(mut self, factor: f64) -> Self {
        self.mean_interarrival /= factor.max(1e-9);
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the task list, sorted by arrival.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtm_sched::workload::WorkloadParams;
    ///
    /// let tasks = WorkloadParams::default().generate();
    /// assert_eq!(tasks.len(), 60);
    /// assert!(tasks.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    /// // Same parameters, same workload — fully reproducible.
    /// assert_eq!(tasks, WorkloadParams::default().generate());
    /// ```
    pub fn generate(&self) -> Vec<TaskSpec> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut tasks = Vec::with_capacity(self.n_tasks);
        let mut t = 0f64;
        for id in 0..self.n_tasks {
            // Exponential inter-arrival via inverse transform.
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += -self.mean_interarrival * u.ln();
            let rows = rng.gen_range(self.rows.0..=self.rows.1);
            let cols = rng.gen_range(self.cols.0..=self.cols.1);
            let duration = rng.gen_range(self.duration.0..=self.duration.1);
            tasks.push(TaskSpec {
                id: id as u64,
                rows,
                cols,
                arrival: t as Micros,
                duration,
            });
        }
        tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = WorkloadParams::default().generate();
        let b = WorkloadParams::default().generate();
        assert_eq!(a, b);
        let c = WorkloadParams::default().with_seed(8).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_sorted_and_sized() {
        let tasks = WorkloadParams::default().generate();
        assert_eq!(tasks.len(), 60);
        for w in tasks.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for t in &tasks {
            assert!((4..=12).contains(&t.rows));
            assert!((4..=12).contains(&t.cols));
            assert!((50_000..=400_000).contains(&t.duration));
        }
    }

    #[test]
    fn load_factor_compresses_arrivals() {
        let slow = WorkloadParams::default().generate();
        let fast = WorkloadParams::default().with_load_factor(4.0).generate();
        assert!(fast.last().unwrap().arrival < slow.last().unwrap().arrival);
    }

    #[test]
    fn mean_interarrival_roughly_respected() {
        let params = WorkloadParams {
            n_tasks: 2000,
            ..WorkloadParams::default()
        };
        let tasks = params.generate();
        let span = tasks.last().unwrap().arrival as f64;
        let mean = span / 2000.0;
        assert!((mean - 40_000.0).abs() < 4_000.0, "empirical mean {mean}");
    }
}
