//! Admission callbacks: a shared vocabulary for accept/defer decisions.
//!
//! Both the discrete-event [`Scheduler`](crate::Scheduler) and any
//! higher layer that drives a real manager from the same policies (the
//! `rtm-service` runtime loop) face the same decision points: a task
//! arrives, and it is either placed immediately, placed after a
//! rearrangement, or deferred. [`AdmissionOutcome`] names those
//! outcomes and [`AdmissionHook`] lets an external observer watch every
//! decision as the simulation makes it — the mechanism behind
//! [`Scheduler::run_with_hook`](crate::Scheduler::run_with_hook).

use crate::task::{Micros, TaskSpec};
use rtm_fpga::geom::Rect;

/// The outcome of one admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// Placed immediately in existing free space.
    Immediate {
        /// The region the task received.
        region: Rect,
    },
    /// Placed after a rearrangement of running tasks made room.
    AfterRearrange {
        /// The region the task received.
        region: Rect,
        /// Task moves the rearrangement executed.
        moves: usize,
        /// CLBs relocated by those moves.
        cells_moved: u32,
    },
    /// Does not fit right now (and the policy cannot or may not make
    /// room): the task stays queued. Reported at every decision point
    /// where the head of the queue fails to place, so an observer sees
    /// each retry.
    Deferred,
}

impl AdmissionOutcome {
    /// True for either admitted variant.
    pub fn admitted(&self) -> bool {
        !matches!(self, AdmissionOutcome::Deferred)
    }
}

/// Observer of admission decisions.
///
/// Implemented for closures, so the simplest hook is a `FnMut`:
///
/// # Examples
///
/// ```
/// use rtm_sched::{Scheduler, Policy, workload::WorkloadParams};
/// use rtm_sched::admission::AdmissionOutcome;
/// use rtm_fpga::geom::{ClbCoord, Rect};
///
/// let tasks = WorkloadParams::default().generate();
/// let arena = Rect::new(ClbCoord::new(0, 0), 28, 42);
/// let mut admitted = 0usize;
/// let metrics = Scheduler::new(arena, Policy::TransparentReloc).run_with_hook(
///     &tasks,
///     &mut |_now, _task: &rtm_sched::TaskSpec, outcome: AdmissionOutcome| {
///         if outcome.admitted() {
///             admitted += 1;
///         }
///     },
/// );
/// assert_eq!(admitted, metrics.completed);
/// ```
pub trait AdmissionHook {
    /// Called at every admission decision at simulated time `now`.
    fn on_decision(&mut self, now: Micros, task: &TaskSpec, outcome: AdmissionOutcome);
}

/// The no-op hook (used by [`Scheduler::run`](crate::Scheduler::run)).
impl AdmissionHook for () {
    fn on_decision(&mut self, _now: Micros, _task: &TaskSpec, _outcome: AdmissionOutcome) {}
}

impl<F: FnMut(Micros, &TaskSpec, AdmissionOutcome)> AdmissionHook for F {
    fn on_decision(&mut self, now: Micros, task: &TaskSpec, outcome: AdmissionOutcome) {
        self(now, task, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_fpga::geom::ClbCoord;

    #[test]
    fn admitted_flags() {
        let region = Rect::new(ClbCoord::new(0, 0), 2, 2);
        assert!(AdmissionOutcome::Immediate { region }.admitted());
        assert!(AdmissionOutcome::AfterRearrange {
            region,
            moves: 1,
            cells_moved: 4
        }
        .admitted());
        assert!(!AdmissionOutcome::Deferred.admitted());
    }
}
