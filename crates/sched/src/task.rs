//! Task model: rectangular functions with arrival and execution times.
//!
//! Times are in microseconds, matching the reconfiguration cost scale
//! (a Boundary Scan CLB relocation is ~22 600 µs, §2).

use std::fmt;

/// Time unit: microseconds.
pub type Micros = u64;

/// One task (function) request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSpec {
    /// Unique id.
    pub id: u64,
    /// CLB rows required.
    pub rows: u16,
    /// CLB columns required.
    pub cols: u16,
    /// Arrival time (µs).
    pub arrival: Micros,
    /// Execution time once started (µs).
    pub duration: Micros,
}

impl TaskSpec {
    /// Area in CLBs.
    pub fn area(&self) -> u32 {
        self.rows as u32 * self.cols as u32
    }
}

impl fmt::Display for TaskSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task {} [{}x{}] @{}us for {}us",
            self.id, self.rows, self.cols, self.arrival, self.duration
        )
    }
}

/// Per-task outcome of a scheduling run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskOutcome {
    /// The task.
    pub spec: TaskSpec,
    /// When it was placed and started (µs).
    pub start: Micros,
    /// When it finished (µs), including any halt time.
    pub finish: Micros,
    /// Time spent halted by rearrangements (µs).
    pub halt_time: Micros,
    /// Whether it was placed the instant it arrived.
    pub immediate: bool,
}

impl TaskOutcome {
    /// Waiting time between arrival and start.
    pub fn wait(&self) -> Micros {
        self.start - self.spec.arrival
    }

    /// Total delay versus an ideal dedicated device
    /// (wait + halt overhead).
    pub fn delay(&self) -> Micros {
        self.wait() + self.halt_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_display() {
        let t = TaskSpec {
            id: 3,
            rows: 4,
            cols: 5,
            arrival: 10,
            duration: 100,
        };
        assert_eq!(t.area(), 20);
        assert!(t.to_string().contains("task 3"));
    }

    #[test]
    fn outcome_math() {
        let spec = TaskSpec {
            id: 1,
            rows: 1,
            cols: 1,
            arrival: 100,
            duration: 50,
        };
        let o = TaskOutcome {
            spec,
            start: 130,
            finish: 200,
            halt_time: 20,
            immediate: false,
        };
        assert_eq!(o.wait(), 30);
        assert_eq!(o.delay(), 50);
    }
}
