//! QoS tiers: the priority vocabulary for tiered admission.
//!
//! Ullmann et al. (PAPERS.md) allocate functions to the reconfigurable
//! array by QoS class but lack a safe eviction mechanism; this module
//! supplies the *vocabulary* for that arbitration — a total order of
//! service tiers plus the victim-cost metric a preemptive admission
//! policy ranks low-tier residents by. The mechanism (extract/readmit
//! bundles, reserve/execute tickets) lives in `rtm-core`/`rtm-service`;
//! the fleet's preemption edge combines the two.
//!
//! The order is `Batch < Standard < Interactive`: an arrival may only
//! preempt residents of a *strictly* lower tier, so batch work can
//! never displace batch work and the relation is irreflexive by
//! construction — no preemption cycles are possible.

use crate::task::Micros;

/// Service tier of an arrival, ordered `Batch < Standard < Interactive`.
///
/// The derived [`Ord`] is the preemption order: `a` may evict `b` only
/// when `a.may_preempt(b)`, i.e. `a > b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QosTier {
    /// Background work: no interactivity promise, evictable by both
    /// higher tiers. Evicted batch functions are parked (or migrated)
    /// and readmitted in a later idle window.
    Batch,
    /// The default tier: ordinary requests. Evictable by `Interactive`
    /// only.
    Standard,
    /// Deadline-bound interactive work: never evicted, and admission
    /// may preempt lower tiers to seat it.
    Interactive,
}

impl QosTier {
    /// Every tier, lowest first — index order matches [`QosTier::index`].
    pub const ALL: [QosTier; 3] = [QosTier::Batch, QosTier::Standard, QosTier::Interactive];

    /// Stable machine-readable name (used by the event stream and the
    /// perf-baseline JSON; renames break byte-identical baselines).
    pub fn name(&self) -> &'static str {
        match self {
            QosTier::Batch => "batch",
            QosTier::Standard => "standard",
            QosTier::Interactive => "interactive",
        }
    }

    /// Parses [`QosTier::name`] back; `None` for anything else.
    pub fn from_name(name: &str) -> Option<QosTier> {
        QosTier::ALL.into_iter().find(|t| t.name() == name)
    }

    /// Dense index (`Batch = 0 … Interactive = 2`) for per-tier counter
    /// arrays in reports.
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// True when an arrival at `self` may evict a resident at `other`:
    /// strictly greater tier, never a peer. Irreflexive, so preemption
    /// chains always terminate.
    pub fn may_preempt(&self, other: QosTier) -> bool {
        *self > other
    }
}

impl std::fmt::Display for QosTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Eviction cost of a resident: CLB footprint × remaining runtime.
///
/// The preemption policy evicts the *cheapest* lower-tier resident —
/// the one forfeiting the least outstanding work. Residents with no
/// known expiry (open-ended) cost [`u128::MAX`], so they are only ever
/// chosen when every bounded-runtime victim is exhausted; ties are
/// broken by the caller on trace id for determinism.
pub fn victim_cost(cells: u32, remaining: Option<Micros>) -> u128 {
    match remaining {
        Some(rem) => u128::from(cells) * u128::from(rem),
        None => u128::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_totally_ordered() {
        assert!(QosTier::Interactive > QosTier::Standard);
        assert!(QosTier::Standard > QosTier::Batch);
        assert!(QosTier::Interactive > QosTier::Batch);
    }

    #[test]
    fn preemption_is_strict() {
        for a in QosTier::ALL {
            assert!(!a.may_preempt(a), "{a} must never preempt a peer");
        }
        assert!(QosTier::Interactive.may_preempt(QosTier::Batch));
        assert!(QosTier::Interactive.may_preempt(QosTier::Standard));
        assert!(QosTier::Standard.may_preempt(QosTier::Batch));
        assert!(!QosTier::Batch.may_preempt(QosTier::Standard));
    }

    #[test]
    fn names_round_trip_and_index_is_dense() {
        for (i, t) in QosTier::ALL.into_iter().enumerate() {
            assert_eq!(t.index(), i);
            assert_eq!(QosTier::from_name(t.name()), Some(t));
            assert_eq!(t.to_string(), t.name());
        }
        assert_eq!(QosTier::from_name("gold"), None);
    }

    #[test]
    fn victim_cost_orders_small_short_work_first() {
        // 4 cells for 10us beats 4 cells for 100us beats 40 cells.
        assert!(victim_cost(4, Some(10)) < victim_cost(4, Some(100)));
        assert!(victim_cost(4, Some(100)) < victim_cost(40, Some(100)));
        // Open-ended residents are last-resort victims.
        assert!(victim_cost(1, Some(Micros::MAX)) < victim_cost(1, None));
    }
}
