//! # rtm-sched
//!
//! On-line spatial/temporal scheduling of tasks on the reconfigurable
//! array — the workload layer of the reproduction.
//!
//! The paper's system promise (§1, §5): several applications share one
//! FPGA, functions are swapped in and out at run time, and when
//! fragmentation blocks an incoming function the manager rearranges
//! running ones — *without* halting them, unlike the rearrangements of
//! Diessel et al.\[5\]. This crate turns that claim into a measurable
//! experiment (T2):
//!
//! * [`task::TaskSpec`] — rectangular task requests with arrival and
//!   execution times;
//! * [`workload`] — reproducible stochastic workload generation;
//! * [`scheduler::Scheduler`] — a discrete-event simulation of arrival,
//!   placement, rearrangement and departure, parameterised by a
//!   [`policy::Policy`]:
//!   [`policy::Policy::NoRearrange`] (queue until a hole appears),
//!   [`policy::Policy::HaltRearrange`] (the \[5\] baseline: moved tasks
//!   stop while they move) and [`policy::Policy::TransparentReloc`] (this
//!   paper: moves never stop the moved task);
//! * [`metrics::RunMetrics`] — waiting times, halt times, utilisation,
//!   move traffic.
//!
//! ## Example
//!
//! ```
//! use rtm_sched::{workload::WorkloadParams, scheduler::Scheduler, policy::Policy};
//! use rtm_fpga::geom::{ClbCoord, Rect};
//!
//! let tasks = WorkloadParams::default().generate();
//! let arena = Rect::new(ClbCoord::new(0, 0), 28, 42);
//! let metrics = Scheduler::new(arena, Policy::TransparentReloc).run(&tasks);
//! assert_eq!(metrics.completed, tasks.len());
//! assert_eq!(metrics.total_halt_time, 0, "transparent moves never halt tasks");
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod metrics;
pub mod policy;
pub mod qos;
pub mod scheduler;
pub mod task;
pub mod workload;

pub use admission::{AdmissionHook, AdmissionOutcome};
pub use policy::Policy;
pub use qos::QosTier;
pub use scheduler::Scheduler;
pub use task::TaskSpec;
