//! The router and live net database.
//!
//! Nets are routed with breadth-first search over the device routing
//! graph (PIP candidates + fixed segment links), with full occupancy
//! tracking. The database stays live after implementation: the relocation
//! engine *extends* nets (paralleling a replica input), adds *parallel
//! source* nets (paralleling outputs, Fig. 2 phase 2 / Fig. 5), and
//! retires sinks or whole nets (disconnecting the original CLB), all while
//! other nets keep their resources.

use crate::error::SimError;
use rtm_fpga::geom::Rect;
use rtm_fpga::routing::{
    fixed_link, pip_exists, Pip, RouteNode, Wire, HEX_DELAY_PS, PIP_DELAY_PS, SINGLE_DELAY_PS,
    WIRE_COUNT,
};
use rtm_fpga::Device;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::OnceLock;

/// Identifier of a routed net within a [`NetDb`].
pub type NetId = usize;

/// Static per-wire adjacency: the destination wires reachable by one PIP.
fn pip_fanout(wire: Wire) -> &'static [Wire] {
    static TABLE: OnceLock<Vec<Vec<Wire>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        (0..WIRE_COUNT)
            .map(|i| {
                let from = Wire::from_index(i);
                Wire::all().filter(|to| pip_exists(from, *to)).collect()
            })
            .collect()
    });
    &table[wire.index()]
}

/// One routed net: a source, and one **full** node path (source → sink)
/// per sink. Paths share trunk segments; every node and PIP is
/// reference-counted once per sink whose signal flows through it, so
/// retiring one sink never strips resources another sink depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedNet {
    /// The driving node (usually a `CellOut`).
    pub source: RouteNode,
    /// For each sink pin, the complete node sequence from the source.
    pub paths: BTreeMap<RouteNode, Vec<RouteNode>>,
    /// Reference count of each node across paths (plus one for the
    /// source).
    node_refs: BTreeMap<RouteNode, usize>,
    /// Reference count of each PIP across paths.
    pip_refs: BTreeMap<Pip, usize>,
}

impl RoutedNet {
    fn new(source: RouteNode) -> Self {
        let mut node_refs = BTreeMap::new();
        node_refs.insert(source, 1);
        RoutedNet {
            source,
            paths: BTreeMap::new(),
            node_refs,
            pip_refs: BTreeMap::new(),
        }
    }

    /// The sinks this net reaches.
    pub fn sinks(&self) -> impl Iterator<Item = RouteNode> + '_ {
        self.paths.keys().copied()
    }

    /// All nodes currently owned by the net.
    pub fn nodes(&self) -> impl Iterator<Item = RouteNode> + '_ {
        self.node_refs.keys().copied()
    }

    /// All PIPs currently active for the net.
    pub fn pips(&self) -> impl Iterator<Item = Pip> + '_ {
        self.pip_refs.keys().copied()
    }

    /// Propagation delay from source to `sink` in picoseconds, or `None`
    /// if the sink is not on the net.
    ///
    /// Each PIP costs [`PIP_DELAY_PS`]; driving onto a single or hex
    /// segment costs its segment delay.
    pub fn sink_delay_ps(&self, sink: RouteNode) -> Option<u64> {
        let path = self.paths.get(&sink)?;
        debug_assert_eq!(path.first(), Some(&self.source), "paths are full chains");
        Some(path_delay_ps(path))
    }

    /// The full source → `node` chain along some existing path.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not on the net.
    fn chain_to(&self, node: RouteNode) -> Vec<RouteNode> {
        if node == self.source {
            return vec![node];
        }
        for path in self.paths.values() {
            if let Some(pos) = path.iter().position(|n| *n == node) {
                return path[..=pos].to_vec();
            }
        }
        panic!("node {node} not on net");
    }
}

/// Delay along a node sequence (PIP hops + segment drives).
pub fn path_delay_ps(path: &[RouteNode]) -> u64 {
    let mut total = 0;
    for pair in path.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if a.tile == b.tile {
            total += PIP_DELAY_PS;
            total += match b.wire {
                Wire::Out(_, _) => SINGLE_DELAY_PS,
                Wire::HexOut(_, _) => HEX_DELAY_PS,
                _ => 0,
            };
        }
        // Fixed links cost nothing extra (the segment delay was charged
        // when driving onto the outbound wire).
    }
    total
}

/// Sentinel net id marking nodes reserved by *foreign* net databases
/// (other designs sharing the device). Reserved nodes are unusable for
/// routing but carry no local net.
pub const RESERVED: NetId = usize::MAX;

/// The live net database: routed nets plus wire occupancy.
#[derive(Debug, Clone, Default)]
pub struct NetDb {
    nets: Vec<Option<RoutedNet>>,
    occupancy: HashMap<RouteNode, Vec<NetId>>,
}

impl NetDb {
    /// An empty database.
    pub fn new() -> Self {
        NetDb::default()
    }

    /// Marks nodes used by other designs' nets as unusable. Several
    /// designs share one physical device but keep separate net databases;
    /// before routing in this database, the caller must reserve every
    /// node the others occupy, or the router may silently bridge nets.
    pub fn reserve<I: IntoIterator<Item = RouteNode>>(&mut self, nodes: I) {
        for node in nodes {
            let users = self.occupancy.entry(node).or_default();
            if !users.contains(&RESERVED) {
                users.push(RESERVED);
            }
        }
    }

    /// Releases every reservation made with [`NetDb::reserve`].
    pub fn clear_reservations(&mut self) {
        self.occupancy.retain(|_, users| {
            users.retain(|u| *u != RESERVED);
            !users.is_empty()
        });
    }

    /// All nodes currently owned by this database's live nets (the set a
    /// foreign database must reserve).
    pub fn all_nodes(&self) -> Vec<RouteNode> {
        let mut out: Vec<RouteNode> = self
            .nets()
            .flat_map(|(_, n)| n.nodes().collect::<Vec<_>>())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The net behind `id`, if it still exists.
    pub fn net(&self, id: NetId) -> Option<&RoutedNet> {
        self.nets.get(id).and_then(|n| n.as_ref())
    }

    /// All live nets.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &RoutedNet)> {
        self.nets
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (i, n)))
    }

    /// The nets using `node` (pass-through owner first).
    pub fn users_of(&self, node: RouteNode) -> &[NetId] {
        self.occupancy.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Routes a new net from `source` to every sink, in order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unroutable`] if any sink cannot be reached; the
    /// database and device are left unchanged in that case.
    pub fn route_net(
        &mut self,
        dev: &mut Device,
        source: RouteNode,
        sinks: &[RouteNode],
        within: Option<Rect>,
    ) -> Result<NetId, SimError> {
        let id = self.nets.len();
        let mut net = RoutedNet::new(source);
        self.occupancy.entry(source).or_default().push(id);
        let mut added: Vec<(Vec<RouteNode>, RouteNode)> = Vec::new();
        for sink in sinks {
            match self.find_path(dev, &net, id, *sink, within) {
                Ok(path) => {
                    self.commit_path(dev, &mut net, id, *sink, path.clone());
                    added.push((path, *sink));
                }
                Err(e) => {
                    // Roll back everything committed for this net.
                    for (_, s) in added.iter().rev() {
                        Self::retract_path(dev, &mut net, &mut self.occupancy, id, *s);
                    }
                    remove_occupant(&mut self.occupancy, source, id);
                    return Err(e);
                }
            }
        }
        self.nets.push(Some(net));
        Ok(id)
    }

    /// Extends an existing net to one more sink (paralleling a replica
    /// input with the original, paper Fig. 2 phase 1).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unroutable`] if no path exists.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live net.
    pub fn extend_net(
        &mut self,
        dev: &mut Device,
        id: NetId,
        sink: RouteNode,
        within: Option<Rect>,
    ) -> Result<(), SimError> {
        let mut net = self.nets[id].take().expect("live net");
        let result = self.find_path(dev, &net, id, sink, within);
        match result {
            Ok(path) => {
                self.commit_path(dev, &mut net, id, sink, path);
                self.nets[id] = Some(net);
                Ok(())
            }
            Err(e) => {
                self.nets[id] = Some(net);
                Err(e)
            }
        }
    }

    /// Removes one sink (and the branch exclusively feeding it).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live net or `sink` is not on it.
    pub fn remove_sink(&mut self, dev: &mut Device, id: NetId, sink: RouteNode) {
        let mut net = self.nets[id].take().expect("live net");
        assert!(net.paths.contains_key(&sink), "sink {sink} not on net {id}");
        Self::retract_path(dev, &mut net, &mut self.occupancy, id, sink);
        self.nets[id] = Some(net);
    }

    /// Merges net `from` into net `into`: all of `from`'s paths, resource
    /// refcounts and occupancy move to `into`. Used by two-phase routing
    /// relocation (paper Fig. 5): the replica path is routed as a
    /// temporary net, the original branch retired, then the replica
    /// absorbed into the original net's bookkeeping. No device bits
    /// change.
    ///
    /// # Panics
    ///
    /// Panics if either id is dead, the nets have different sources, or
    /// they share a sink.
    pub fn absorb(&mut self, into: NetId, from: NetId) {
        assert_ne!(into, from, "cannot absorb a net into itself");
        let from_net = self.nets[from].take().expect("live source net");
        let into_net = self.nets[into].as_mut().expect("live target net");
        assert_eq!(
            from_net.source, into_net.source,
            "absorb requires a shared source"
        );
        for (sink, path) in from_net.paths {
            assert!(
                !into_net.paths.contains_key(&sink),
                "nets share sink {sink}"
            );
            into_net.paths.insert(sink, path);
        }
        for (node, count) in from_net.node_refs {
            // The shared source is counted once in each net; collapse.
            *into_net.node_refs.entry(node).or_insert(0) += count;
        }
        for (pip, count) in from_net.pip_refs {
            *into_net.pip_refs.entry(pip).or_insert(0) += count;
        }
        for users in self.occupancy.values_mut() {
            for u in users.iter_mut() {
                if *u == from {
                    *u = into;
                }
            }
            let mut seen = Vec::new();
            users.retain(|u| {
                if seen.contains(u) {
                    false
                } else {
                    seen.push(*u);
                    true
                }
            });
        }
    }

    /// The net (if any) having `sink` among its sinks.
    pub fn net_with_sink(&self, sink: RouteNode) -> Option<NetId> {
        self.nets()
            .find(|(_, n)| n.paths.contains_key(&sink))
            .map(|(id, _)| id)
    }

    /// The net (if any) driven from `source`.
    pub fn net_with_source(&self, source: RouteNode) -> Option<NetId> {
        self.nets()
            .find(|(_, n)| n.source == source)
            .map(|(id, _)| id)
    }

    /// Removes an entire net, releasing all its resources.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live net.
    pub fn remove_net(&mut self, dev: &mut Device, id: NetId) {
        let mut net = self.nets[id].take().expect("live net");
        let sinks: Vec<RouteNode> = net.sinks().collect();
        for sink in sinks {
            Self::retract_path(dev, &mut net, &mut self.occupancy, id, sink);
        }
        remove_occupant(&mut self.occupancy, net.source, id);
    }

    /// Breadth-first search from the net's current nodes to `sink`.
    fn find_path(
        &self,
        dev: &Device,
        net: &RoutedNet,
        id: NetId,
        sink: RouteNode,
        within: Option<Rect>,
    ) -> Result<Vec<RouteNode>, SimError> {
        // The sink pin itself may be shared (paralleled outputs drive a
        // pin that already belongs to another net), but must not already
        // belong to *this* net.
        if net.node_refs.contains_key(&sink) {
            return Err(SimError::SinkOccupied { pin: sink });
        }
        let usable = |node: RouteNode| -> bool {
            if let Some(r) = within {
                if !r.contains(node.tile) {
                    return false;
                }
            }
            let users = self.users_of(node);
            users.is_empty() || users == [id]
        };
        let mut parent: HashMap<RouteNode, RouteNode> = HashMap::new();
        let mut queue: VecDeque<RouteNode> = VecDeque::new();
        for n in net.nodes() {
            parent.insert(n, n);
            queue.push_back(n);
        }
        let (rows, cols) = (dev.rows(), dev.cols());
        while let Some(node) = queue.pop_front() {
            let push = |next: RouteNode, parent_map: &mut HashMap<_, _>, q: &mut VecDeque<_>| {
                if parent_map.contains_key(&next) {
                    return false;
                }
                if next == sink {
                    parent_map.insert(next, node);
                    return true;
                }
                if usable(next) {
                    parent_map.insert(next, node);
                    q.push_back(next);
                }
                false
            };
            // PIP hops within the tile.
            let mut found = false;
            for to in pip_fanout(node.wire) {
                let next = RouteNode::new(node.tile, *to);
                if push(next, &mut parent, &mut queue) {
                    found = true;
                    break;
                }
            }
            if !found {
                // Fixed segment link.
                if let Some(next) = fixed_link(node.tile, node.wire, rows, cols) {
                    found = push(next, &mut parent, &mut queue);
                }
            }
            if found {
                // Reconstruct the branch (sink back to the net node it
                // grew from), then prepend the source → branch-point
                // chain so the stored path is a full source → sink chain.
                let mut branch = vec![sink];
                let mut cur = sink;
                loop {
                    let p = parent[&cur];
                    if p == cur {
                        break;
                    }
                    branch.push(p);
                    cur = p;
                }
                branch.reverse();
                let mut path = net.chain_to(branch[0]);
                path.extend_from_slice(&branch[1..]);
                return Ok(path);
            }
        }
        Err(SimError::Unroutable {
            from: net.source,
            to: sink,
        })
    }

    /// Activates a found path: PIPs on the device, refcounts, occupancy.
    fn commit_path(
        &mut self,
        dev: &mut Device,
        net: &mut RoutedNet,
        id: NetId,
        sink: RouteNode,
        path: Vec<RouteNode>,
    ) {
        for pair in path.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if a.tile == b.tile {
                let pip = Pip::new(a.tile, a.wire, b.wire);
                let count = net.pip_refs.entry(pip).or_insert(0);
                if *count == 0 {
                    dev.add_pip(pip).expect("router only proposes valid pips");
                }
                *count += 1;
            }
        }
        for node in &path {
            let count = net.node_refs.entry(*node).or_insert(0);
            if *count == 0 {
                self.occupancy.entry(*node).or_default().push(id);
            }
            *count += 1;
        }
        net.paths.insert(sink, path);
    }

    /// Releases a sink's path: PIPs, refcounts, occupancy.
    fn retract_path(
        dev: &mut Device,
        net: &mut RoutedNet,
        occupancy: &mut HashMap<RouteNode, Vec<NetId>>,
        id: NetId,
        sink: RouteNode,
    ) {
        let path = net.paths.remove(&sink).expect("sink present");
        for pair in path.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if a.tile == b.tile {
                let pip = Pip::new(a.tile, a.wire, b.wire);
                let count = net.pip_refs.get_mut(&pip).expect("pip refcounted");
                *count -= 1;
                if *count == 0 {
                    net.pip_refs.remove(&pip);
                    dev.remove_pip(&pip).expect("pip active");
                }
            }
        }
        for node in &path {
            let count = net.node_refs.get_mut(node).expect("node refcounted");
            *count -= 1;
            if *count == 0 {
                net.node_refs.remove(node);
                remove_occupant(occupancy, *node, id);
            }
        }
    }
}

fn remove_occupant(occupancy: &mut HashMap<RouteNode, Vec<NetId>>, node: RouteNode, id: NetId) {
    if let Some(users) = occupancy.get_mut(&node) {
        users.retain(|u| *u != id);
        if users.is_empty() {
            occupancy.remove(&node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_fpga::geom::ClbCoord;
    use rtm_fpga::part::Part;

    fn dev() -> Device {
        Device::new(Part::Xcv50)
    }

    fn out(r: u16, c: u16, cell: u8) -> RouteNode {
        RouteNode::new(ClbCoord::new(r, c), Wire::CellOut(cell))
    }

    fn pin(r: u16, c: u16, cell: u8, p: u8) -> RouteNode {
        RouteNode::new(ClbCoord::new(r, c), Wire::CellIn(cell, p))
    }

    #[test]
    fn routes_neighbouring_connection() {
        let mut d = dev();
        let mut db = NetDb::new();
        let id = db
            .route_net(&mut d, out(3, 3, 0), &[pin(3, 4, 0, 0)], None)
            .unwrap();
        let net = db.net(id).unwrap();
        assert_eq!(net.sinks().collect::<Vec<_>>(), vec![pin(3, 4, 0, 0)]);
        // Device agrees: the sink is downstream of the source.
        let sinks = d.sinks_of(out(3, 3, 0));
        assert!(sinks.contains(&pin(3, 4, 0, 0)));
    }

    #[test]
    fn routes_long_connection_with_positive_delay() {
        let mut d = dev();
        let mut db = NetDb::new();
        let id = db
            .route_net(&mut d, out(0, 0, 1), &[pin(12, 20, 2, 1)], None)
            .unwrap();
        let delay = db
            .net(id)
            .unwrap()
            .sink_delay_ps(pin(12, 20, 2, 1))
            .unwrap();
        assert!(delay > 5_000, "a ~30-tile route is several ns: {delay}ps");
        assert!(d.sinks_of(out(0, 0, 1)).contains(&pin(12, 20, 2, 1)));
    }

    #[test]
    fn multi_sink_fanout_shares_trunk() {
        let mut d = dev();
        let mut db = NetDb::new();
        let sinks = [pin(2, 6, 0, 2), pin(2, 6, 1, 3), pin(4, 6, 0, 2)];
        let id = db.route_net(&mut d, out(2, 2, 0), &sinks, None).unwrap();
        let net = db.net(id).unwrap();
        assert_eq!(net.sinks().count(), 3);
        for s in sinks {
            assert!(d.sinks_of(out(2, 2, 0)).contains(&s), "{s} not reached");
        }
    }

    #[test]
    fn occupancy_blocks_other_nets_and_release_restores() {
        let mut d = dev();
        let mut db = NetDb::new();
        let id1 = db
            .route_net(&mut d, out(5, 5, 0), &[pin(5, 6, 0, 1)], None)
            .unwrap();
        let used_before: Vec<RouteNode> = db.net(id1).unwrap().nodes().collect();
        // A second net from a different source to a different pin of the
        // same tile must not reuse net 1's nodes.
        let id2 = db
            .route_net(&mut d, out(5, 5, 1), &[pin(5, 6, 1, 2)], None)
            .unwrap();
        let n2: Vec<RouteNode> = db.net(id2).unwrap().nodes().collect();
        for n in &n2 {
            assert!(!used_before.contains(n), "{n} reused");
        }
        db.remove_net(&mut d, id1);
        for n in used_before {
            assert!(db.users_of(n).is_empty());
        }
    }

    #[test]
    fn parallel_source_may_share_sink_pin() {
        let mut d = dev();
        let mut db = NetDb::new();
        let sink = pin(8, 8, 0, 0);
        let _orig = db.route_net(&mut d, out(8, 7, 0), &[sink], None).unwrap();
        // Replica output drives the same pin (Fig. 2 phase 2).
        let replica = db.route_net(&mut d, out(8, 9, 0), &[sink], None).unwrap();
        assert_eq!(
            db.net(replica).unwrap().sinks().collect::<Vec<_>>(),
            vec![sink]
        );
        assert_eq!(d.pips_driving(sink).len(), 2, "two drivers paralleled");
    }

    #[test]
    fn extend_net_adds_sink() {
        let mut d = dev();
        let mut db = NetDb::new();
        let id = db
            .route_net(&mut d, out(1, 1, 0), &[pin(1, 2, 0, 1)], None)
            .unwrap();
        db.extend_net(&mut d, id, pin(2, 2, 1, 2), None).unwrap();
        assert_eq!(db.net(id).unwrap().sinks().count(), 2);
    }

    #[test]
    fn remove_sink_keeps_other_branches() {
        let mut d = dev();
        let mut db = NetDb::new();
        let s1 = pin(3, 5, 0, 3);
        let s2 = pin(5, 3, 0, 3);
        let id = db.route_net(&mut d, out(3, 3, 0), &[s1, s2], None).unwrap();
        db.remove_sink(&mut d, id, s1);
        let net = db.net(id).unwrap();
        assert_eq!(net.sinks().collect::<Vec<_>>(), vec![s2]);
        assert!(d.sinks_of(out(3, 3, 0)).contains(&s2));
        assert!(!d.sinks_of(out(3, 3, 0)).contains(&s1));
    }

    #[test]
    fn within_constraint_respected() {
        let mut d = dev();
        let mut db = NetDb::new();
        let region = Rect::new(ClbCoord::new(0, 0), 4, 4);
        let id = db
            .route_net(&mut d, out(0, 0, 0), &[pin(3, 3, 0, 3)], Some(region))
            .unwrap();
        for node in db.net(id).unwrap().nodes() {
            assert!(region.contains(node.tile), "{node} escapes region");
        }
    }

    #[test]
    fn unroutable_when_region_disconnects() {
        let mut d = dev();
        let mut db = NetDb::new();
        // Region containing only the source tile: sink outside.
        let region = Rect::new(ClbCoord::new(0, 0), 1, 1);
        let err = db
            .route_net(&mut d, out(0, 0, 0), &[pin(5, 5, 0, 0)], Some(region))
            .unwrap_err();
        assert!(matches!(err, SimError::Unroutable { .. }));
        // Nothing leaked.
        assert_eq!(d.pips().count(), 0);
        assert!(db.users_of(out(0, 0, 0)).is_empty());
    }

    #[test]
    fn failed_multi_sink_rolls_back() {
        let mut d = dev();
        let mut db = NetDb::new();
        let region = Rect::new(ClbCoord::new(0, 0), 2, 2);
        let err = db
            .route_net(
                &mut d,
                out(0, 0, 0),
                &[pin(1, 1, 0, 1), pin(10, 10, 0, 0)],
                Some(region),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::Unroutable { .. }));
        assert_eq!(d.pips().count(), 0, "first sink's pips rolled back");
    }

    #[test]
    fn absorb_merges_parallel_nets() {
        let mut d = dev();
        let mut db = NetDb::new();
        let source = out(6, 6, 0);
        let s1 = pin(6, 8, 0, 2);
        let s2 = pin(8, 6, 0, 2);
        let orig = db.route_net(&mut d, source, &[s1], None).unwrap();
        let replica = db.route_net(&mut d, source, &[s2], None).unwrap();
        db.absorb(orig, replica);
        assert!(db.net(replica).is_none(), "absorbed net is gone");
        let n = db.net(orig).unwrap();
        assert_eq!(n.sinks().count(), 2);
        assert!(n.sink_delay_ps(s1).is_some());
        assert!(n.sink_delay_ps(s2).is_some());
        // Occupancy relabelled: every node now lists only `orig`.
        for node in n.nodes() {
            assert_eq!(db.users_of(node), &[orig], "{node}");
        }
        // And removal still releases everything.
        db.remove_net(&mut d, orig);
        assert_eq!(d.pips().count(), 0);
    }

    #[test]
    fn reservations_block_routing_and_clear() {
        let mut d = dev();
        let mut db = NetDb::new();
        // Reserve every wire of the corridor between source and sink.
        let source = out(2, 2, 0);
        let sink = pin(2, 4, 0, 0);
        let corridor: Vec<RouteNode> = Wire::all()
            .map(|w| RouteNode::new(ClbCoord::new(2, 3), w))
            .collect();
        db.reserve(corridor.clone());
        // The only row-2 path is blocked; the router detours or fails
        // within a 1-row region.
        let region = Rect::new(ClbCoord::new(2, 2), 1, 3);
        let err = db
            .route_net(&mut d, source, &[sink], Some(region))
            .unwrap_err();
        assert!(matches!(err, SimError::Unroutable { .. }));
        db.clear_reservations();
        db.route_net(&mut d, source, &[sink], Some(region)).unwrap();
    }

    #[test]
    fn net_lookup_by_sink_and_source() {
        let mut d = dev();
        let mut db = NetDb::new();
        let source = out(1, 1, 2);
        let sink = pin(1, 3, 2, 0);
        let id = db.route_net(&mut d, source, &[sink], None).unwrap();
        assert_eq!(db.net_with_sink(sink), Some(id));
        assert_eq!(db.net_with_source(source), Some(id));
        assert_eq!(db.net_with_sink(pin(9, 9, 0, 0)), None);
        assert_eq!(db.net_with_source(out(9, 9, 0)), None);
    }

    #[test]
    fn delay_counts_pips_and_segments() {
        let mut d = dev();
        let mut db = NetDb::new();
        let sink = pin(0, 1, 0, 0);
        let id = db.route_net(&mut d, out(0, 0, 0), &[sink], None).unwrap();
        let delay = db.net(id).unwrap().sink_delay_ps(sink).unwrap();
        // Minimum: pip onto single (120+350) + pip into pin (120) = 590.
        assert!(delay >= 590, "delay {delay}");
        assert!(delay < 5_000, "neighbour route should be short: {delay}");
    }
}
