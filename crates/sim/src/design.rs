//! End-to-end implementation: mapped netlist → configured, routed device.

use crate::error::SimError;
use crate::place::{place, CellLoc, Placement};
use crate::route::{NetDb, NetId};
use rtm_fpga::cell::LogicCell;
use rtm_fpga::geom::Rect;
use rtm_fpga::lut::Lut;
use rtm_fpga::routing::{RouteNode, Wire};
use rtm_fpga::Device;
use rtm_netlist::techmap::{CellSrc, MappedNetlist};

/// A design implemented on a device: cells configured, nets routed, and
/// the net database kept live for later rearrangement.
#[derive(Debug, Clone)]
pub struct PlacedDesign {
    /// The mapped netlist this implements.
    pub design: MappedNetlist,
    /// Where every cell (and input feed cell) sits.
    pub placement: Placement,
    /// The live net database (owned by this design).
    pub netdb: NetDb,
    /// Net driven by each design cell (`None` if the cell has no fan-out).
    pub cell_nets: Vec<Option<NetId>>,
    /// Net driven by each input feed cell.
    pub feed_nets: Vec<Option<NetId>>,
}

impl PlacedDesign {
    /// Location of mapped cell `i`.
    pub fn cell_loc(&self, i: usize) -> CellLoc {
        self.placement.cell_locs[i]
    }

    /// Location of the feed cell for primary input `i`.
    pub fn feed_loc(&self, i: usize) -> CellLoc {
        self.placement.feed_locs[i]
    }

    /// Location of the tap cell for primary output `i`.
    pub fn tap_loc(&self, i: usize) -> CellLoc {
        self.placement.tap_locs[i]
    }

    /// The observation location of each primary output: its tap cell.
    /// Taps consume the producing net, so these locations are stable
    /// across relocations of the producing cells (like the device's
    /// IOBs).
    pub fn output_locs(&self) -> Vec<(String, CellLoc)> {
        self.design
            .outputs
            .iter()
            .zip(&self.placement.tap_locs)
            .map(|((name, _), loc)| (name.clone(), *loc))
            .collect()
    }

    /// The output route node of a cell location.
    pub fn out_node(loc: CellLoc) -> RouteNode {
        RouteNode::new(loc.0, Wire::CellOut(loc.1 as u8))
    }

    /// The input-pin route node of a cell location.
    pub fn in_node(loc: CellLoc, pin: usize) -> RouteNode {
        RouteNode::new(loc.0, Wire::CellIn(loc.1 as u8, pin as u8))
    }

    /// The clock-enable route node of a cell location.
    pub fn ce_node(loc: CellLoc) -> RouteNode {
        RouteNode::new(loc.0, Wire::CellCe(loc.1 as u8))
    }

    /// The FF-bypass route node of a cell location.
    pub fn dx_node(loc: CellLoc) -> RouteNode {
        RouteNode::new(loc.0, Wire::CellDx(loc.1 as u8))
    }

    /// The device cell configuration for mapped cell `i`.
    pub fn cell_config(&self, i: usize) -> LogicCell {
        let c = &self.design.cells[i];
        mark_used(LogicCell {
            lut: c.lut,
            storage: c.storage,
            clocking: c.clocking,
            registered_output: c.registered_output,
            ram_mode: false,
            uses_ce: c.ce.is_some(),
            d_bypass: false,
        })
    }

    /// The net currently driven from `loc`, if any.
    pub fn net_at(&self, loc: CellLoc) -> Option<NetId> {
        let node = Self::out_node(loc);
        self.netdb
            .nets()
            .find(|(_, n)| n.source == node)
            .map(|(id, _)| id)
    }
}

/// The device cell configuration used for input feed cells: an unused
/// pass-through LUT whose output value the simulator forces.
pub fn feed_cell_config() -> LogicCell {
    LogicCell {
        lut: Lut::passthrough(0),
        ..LogicCell::default()
    }
}

/// A constant-0 combinational cell encodes to all-zero configuration
/// bits, which is indistinguishable from an *unused* cell. For such cells
/// we set the (ignored-for-combinational) gated-clock bit as a presence
/// marker so the device view keeps them alive.
pub fn mark_used(mut config: LogicCell) -> LogicCell {
    if config == LogicCell::default() {
        config.clocking = rtm_fpga::storage::ClockingClass::GatedClock;
    }
    config
}

/// Implements `design` on `dev` inside `region`: places cells, configures
/// the device and routes every net (kept within `region`).
///
/// # Errors
///
/// Returns placement errors for undersized regions and
/// [`SimError::Unroutable`] on congestion.
pub fn implement(
    dev: &mut Device,
    design: &MappedNetlist,
    region: Rect,
) -> Result<PlacedDesign, SimError> {
    implement_reserved(dev, design, region, &[])
}

/// Like [`implement`], but with routing nodes used by *other* designs on
/// the same device marked unusable (see `NetDb::reserve`). Required
/// whenever several designs share the device.
///
/// # Errors
///
/// As [`implement`].
pub fn implement_reserved(
    dev: &mut Device,
    design: &MappedNetlist,
    region: Rect,
    reserved: &[rtm_fpga::routing::RouteNode],
) -> Result<PlacedDesign, SimError> {
    let placement = place(design, region, dev.bounds())?;

    // Configure feed and output-tap cells (both pass-through LUTs).
    for loc in placement.feed_locs.iter().chain(placement.tap_locs.iter()) {
        dev.set_cell(loc.0, loc.1, feed_cell_config())?;
    }
    // Configure design cells and initial state.
    for (i, cell) in design.cells.iter().enumerate() {
        let loc = placement.cell_locs[i];
        let config = mark_used(LogicCell {
            lut: cell.lut,
            storage: cell.storage,
            clocking: cell.clocking,
            registered_output: cell.registered_output,
            ram_mode: false,
            uses_ce: cell.ce.is_some(),
            d_bypass: false,
        });
        dev.set_cell(loc.0, loc.1, config)?;
        if cell.storage.is_sequential() {
            dev.set_cell_state(loc.0, loc.1, cell.init)?;
        }
    }

    // Collect sinks per producer.
    let n_cells = design.cells.len();
    let n_inputs = design.n_inputs;
    let mut cell_sinks: Vec<Vec<RouteNode>> = vec![Vec::new(); n_cells];
    let mut feed_sinks: Vec<Vec<RouteNode>> = vec![Vec::new(); n_inputs];
    let mut add_sink = |src: &CellSrc, sink: RouteNode| match src {
        CellSrc::Input(i) => feed_sinks[*i].push(sink),
        CellSrc::Cell(i) => cell_sinks[*i].push(sink),
    };
    for (i, cell) in design.cells.iter().enumerate() {
        let loc = placement.cell_locs[i];
        for (pin, src) in cell.inputs.iter().enumerate() {
            add_sink(src, PlacedDesign::in_node(loc, pin));
        }
        if let Some(ce) = &cell.ce {
            add_sink(ce, PlacedDesign::ce_node(loc));
        }
    }
    // Every primary output's tap consumes the producing net.
    for (i, (_, src)) in design.outputs.iter().enumerate() {
        add_sink(src, PlacedDesign::in_node(placement.tap_locs[i], 0));
    }

    // Route, feeds first (their fan-out tends to be widest).
    let mut netdb = NetDb::new();
    netdb.reserve(reserved.iter().copied());
    let mut feed_nets = vec![None; n_inputs];
    for (i, sinks) in feed_sinks.iter().enumerate() {
        if sinks.is_empty() {
            continue;
        }
        let source = PlacedDesign::out_node(placement.feed_locs[i]);
        feed_nets[i] = Some(netdb.route_net(dev, source, sinks, Some(region))?);
    }
    let mut cell_nets = vec![None; n_cells];
    for (i, sinks) in cell_sinks.iter().enumerate() {
        if sinks.is_empty() {
            continue;
        }
        let source = PlacedDesign::out_node(placement.cell_locs[i]);
        cell_nets[i] = Some(netdb.route_net(dev, source, sinks, Some(region))?);
    }

    netdb.clear_reservations();
    Ok(PlacedDesign {
        design: design.clone(),
        placement,
        netdb,
        cell_nets,
        feed_nets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_fpga::geom::ClbCoord;
    use rtm_fpga::part::Part;
    use rtm_netlist::random::RandomCircuit;
    use rtm_netlist::techmap::map_to_luts;

    fn implement_random(ffs: usize, gates: usize, rows: u16, cols: u16) -> (Device, PlacedDesign) {
        let netlist = RandomCircuit::free_running(ffs, gates, 9).generate();
        let mapped = map_to_luts(&netlist).unwrap();
        let mut dev = Device::new(Part::Xcv200);
        let region = Rect::new(ClbCoord::new(2, 2), rows, cols);
        let placed = implement(&mut dev, &mapped, region).unwrap();
        (dev, placed)
    }

    #[test]
    fn implements_small_circuit() {
        let (dev, placed) = implement_random(6, 24, 10, 10);
        // Every configured cell location holds a used cell on the device.
        for (i, loc) in placed.placement.cell_locs.iter().enumerate() {
            let clb = dev.clb(loc.0).unwrap();
            assert!(
                clb.cells[loc.1].is_used(),
                "cell {i} at {:?} not configured",
                loc
            );
        }
        // Every net's sinks are reachable on the device.
        for (_, net) in placed.netdb.nets() {
            let reached = dev.trace_downstream(net.source);
            for sink in net.sinks() {
                assert!(
                    reached.contains(&sink),
                    "{sink} unreachable from {}",
                    net.source
                );
            }
        }
    }

    #[test]
    fn nets_stay_within_region() {
        let (_, placed) = implement_random(6, 24, 10, 10);
        let region = placed.placement.region;
        for (_, net) in placed.netdb.nets() {
            for node in net.nodes() {
                assert!(region.contains(node.tile));
            }
        }
    }

    #[test]
    fn output_locs_resolve() {
        let (_, placed) = implement_random(4, 16, 10, 10);
        let outs = placed.output_locs();
        assert_eq!(outs.len(), placed.design.outputs.len());
    }

    #[test]
    fn initial_state_written() {
        let (dev, placed) = implement_random(8, 16, 10, 10);
        for (i, cell) in placed.design.cells.iter().enumerate() {
            if cell.storage.is_sequential() {
                let loc = placed.cell_loc(i);
                assert_eq!(dev.cell_state(loc.0, loc.1).unwrap(), cell.init);
            }
        }
    }

    #[test]
    fn medium_circuit_routes() {
        // ~150 cells over a 16x16 region exercises congestion handling.
        let (_, placed) = implement_random(30, 100, 16, 16);
        assert!(placed.netdb.nets().count() > 50);
    }
}
