//! Error type for implementation and simulation.

use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_fpga::routing::RouteNode;
use std::fmt;

/// Errors raised while placing, routing or simulating.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The region cannot hold the design.
    RegionTooSmall {
        /// Cells to place (including input feed cells).
        cells: usize,
        /// Cell slots available in the region.
        capacity: usize,
        /// The region offered.
        region: Rect,
    },
    /// The region does not fit on the device.
    RegionOutOfBounds {
        /// The region offered.
        region: Rect,
    },
    /// The router could not find a path for a connection.
    Unroutable {
        /// Net source.
        from: RouteNode,
        /// Unreached sink.
        to: RouteNode,
    },
    /// A sink pin was already claimed by another net.
    SinkOccupied {
        /// The contested pin.
        pin: RouteNode,
    },
    /// The simulator was driven with the wrong number of inputs.
    InputWidthMismatch {
        /// Inputs the design declares.
        expected: usize,
        /// Inputs provided.
        actual: usize,
    },
    /// A placed cell location no longer holds a configured cell
    /// (device and design views diverged).
    StaleDesign {
        /// The offending location.
        tile: ClbCoord,
        /// Cell index within the CLB.
        cell: usize,
    },
    /// An underlying device error.
    Fpga(rtm_fpga::FpgaError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::RegionTooSmall {
                cells,
                capacity,
                region,
            } => {
                write!(
                    f,
                    "region {region} holds {capacity} cells, design needs {cells}"
                )
            }
            SimError::RegionOutOfBounds { region } => {
                write!(f, "region {region} exceeds the device array")
            }
            SimError::Unroutable { from, to } => write!(f, "no route from {from} to {to}"),
            SimError::SinkOccupied { pin } => write!(f, "sink pin {pin} already claimed"),
            SimError::InputWidthMismatch { expected, actual } => {
                write!(f, "expected {expected} primary inputs, got {actual}")
            }
            SimError::StaleDesign { tile, cell } => {
                write!(f, "design references unconfigured cell {tile}/{cell}")
            }
            SimError::Fpga(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Fpga(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rtm_fpga::FpgaError> for SimError {
    fn from(e: rtm_fpga::FpgaError) -> Self {
        SimError::Fpga(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_fpga::routing::Wire;

    #[test]
    fn displays_nonempty() {
        let node = RouteNode::new(ClbCoord::new(0, 0), Wire::CellOut(0));
        for e in [
            SimError::RegionTooSmall {
                cells: 10,
                capacity: 4,
                region: Rect::new(ClbCoord::new(0, 0), 1, 1),
            },
            SimError::RegionOutOfBounds {
                region: Rect::new(ClbCoord::new(0, 0), 99, 99),
            },
            SimError::Unroutable {
                from: node,
                to: node,
            },
            SimError::SinkOccupied { pin: node },
            SimError::InputWidthMismatch {
                expected: 1,
                actual: 2,
            },
            SimError::StaleDesign {
                tile: ClbCoord::new(1, 1),
                cell: 0,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
