//! Lock-step equivalence checking: the transparency oracle.
//!
//! Runs the device-level simulation against the golden netlist model with
//! identical stimulus and compares primary outputs cycle by cycle. A
//! relocation is *transparent* iff this comparison never diverges and the
//! device sim records no glitch while the procedure executes.

use crate::design::PlacedDesign;
use crate::devsim::DeviceSim;
use crate::error::SimError;
use crate::logic::Logic;
use rtm_fpga::Device;
use rtm_netlist::{GoldenSim, Netlist};

/// One cycle's divergence record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Clock cycle at which outputs differed.
    pub cycle: u64,
    /// Output name.
    pub output: String,
    /// Golden value.
    pub expected: bool,
    /// Device value.
    pub actual: Logic,
}

/// Lock-step harness pairing a device simulation with the golden model.
#[derive(Debug)]
pub struct LockStep<'a> {
    /// The golden model.
    pub golden: GoldenSim<'a>,
    /// The device-level simulation.
    pub device_sim: DeviceSim,
    divergences: Vec<Divergence>,
}

impl<'a> LockStep<'a> {
    /// Builds the pair for a freshly implemented design.
    ///
    /// The golden model's storage is aligned to the device's initial
    /// state (both come from the netlist's init values).
    pub fn new(netlist: &'a Netlist, dev: &Device, placed: &PlacedDesign) -> Self {
        LockStep {
            golden: GoldenSim::new(netlist),
            device_sim: DeviceSim::new(dev, placed),
            divergences: Vec::new(),
        }
    }

    /// Divergences observed so far.
    pub fn divergences(&self) -> &[Divergence] {
        &self.divergences
    }

    /// True if no divergence and no glitch has been observed.
    pub fn transparent(&self) -> bool {
        self.divergences.is_empty() && self.device_sim.glitches().is_empty()
    }

    /// Advances both models one cycle and compares outputs.
    ///
    /// # Errors
    ///
    /// Propagates input-width errors from either model.
    pub fn step(&mut self, dev: &Device, inputs: &[bool]) -> Result<(), SimError> {
        self.golden.step(inputs).map_err(|e| match e {
            rtm_netlist::NetlistError::InputWidthMismatch { expected, actual } => {
                SimError::InputWidthMismatch { expected, actual }
            }
            other => panic!("golden model failed: {other}"),
        })?;
        self.device_sim.step(dev, inputs)?;
        let expected = self.golden.outputs();
        let actual = self.device_sim.outputs();
        for (i, (e, a)) in expected.iter().zip(actual.iter()).enumerate() {
            if a.to_bool() != Some(*e) {
                self.divergences.push(Divergence {
                    cycle: self.device_sim.cycle() - 1,
                    output: format!("out{i}"),
                    expected: *e,
                    actual: *a,
                });
            }
        }
        Ok(())
    }

    /// Runs `cycles` steps with stimulus from `stim(cycle)`.
    ///
    /// # Errors
    ///
    /// Propagates step errors.
    pub fn run<F: FnMut(u64) -> Vec<bool>>(
        &mut self,
        dev: &Device,
        cycles: u64,
        mut stim: F,
    ) -> Result<(), SimError> {
        for _ in 0..cycles {
            let inputs = stim(self.device_sim.cycle());
            self.step(dev, &inputs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::implement;
    use rtm_fpga::geom::{ClbCoord, Rect};
    use rtm_fpga::part::Part;
    use rtm_netlist::random::RandomCircuit;
    use rtm_netlist::techmap::map_to_luts;

    #[test]
    fn clean_implementation_is_transparent() {
        let netlist = RandomCircuit::free_running(8, 30, 21).generate();
        let mapped = map_to_luts(&netlist).unwrap();
        let mut dev = Device::new(Part::Xcv200);
        let region = Rect::new(ClbCoord::new(1, 1), 12, 12);
        let placed = implement(&mut dev, &mapped, region).unwrap();
        let mut ls = LockStep::new(&netlist, &dev, &placed);
        ls.run(&dev, 100, |c| (0..4).map(|b| (c >> b) & 1 == 1).collect())
            .unwrap();
        assert!(ls.transparent(), "divergences: {:?}", ls.divergences());
    }

    #[test]
    fn gated_circuit_is_transparent() {
        let netlist = RandomCircuit::gated(6, 24, 33).generate();
        let mapped = map_to_luts(&netlist).unwrap();
        let mut dev = Device::new(Part::Xcv200);
        let region = Rect::new(ClbCoord::new(1, 1), 12, 12);
        let placed = implement(&mut dev, &mapped, region).unwrap();
        let mut ls = LockStep::new(&netlist, &dev, &placed);
        ls.run(&dev, 100, |c| {
            (0..4).map(|b| (c >> (b + 1)) & 1 == 1).collect()
        })
        .unwrap();
        assert!(ls.transparent(), "divergences: {:?}", ls.divergences());
    }

    #[test]
    fn corrupted_lut_diverges() {
        let netlist = RandomCircuit::free_running(4, 16, 44).generate();
        let mapped = map_to_luts(&netlist).unwrap();
        let mut dev = Device::new(Part::Xcv200);
        let region = Rect::new(ClbCoord::new(1, 1), 10, 10);
        let placed = implement(&mut dev, &mapped, region).unwrap();
        // Sabotage: invert a LUT the first output depends on.
        let (_, loc) = placed.output_locs()[0].clone();
        let mut clb = *dev.clb(loc.0).unwrap();
        let bits = clb.cells[loc.1].lut.bits();
        clb.cells[loc.1].lut.set_bits(!bits);
        dev.set_clb(loc.0, clb).unwrap();

        let mut ls = LockStep::new(&netlist, &dev, &placed);
        ls.run(&dev, 20, |c| (0..4).map(|b| (c >> b) & 1 == 1).collect())
            .unwrap();
        assert!(!ls.divergences().is_empty(), "sabotage must be caught");
    }
}
