//! The device-level simulator: cycle-accurate, three-valued, structure
//! read from the configuration itself.
//!
//! `DeviceSim` discovers the circuit by tracing the device's active PIPs
//! backwards from every configured cell pin, so it simulates **what the
//! configuration memory actually says**, not what a netlist claims. After
//! every reconfiguration step of a relocation the caller re-syncs
//! ([`DeviceSim::sync`]) and keeps clocking; storage state survives the
//! re-sync by cell location, and cells that appear mid-flight (replicas)
//! start at X — exactly the uncertainty the relocation procedure must
//! resolve before connecting outputs.
//!
//! Glitch accounting ([`DeviceSim::glitches`]) records driver conflicts
//! (two paralleled drivers momentarily disagreeing — the event Fig. 2's
//! two-phase ordering avoids) and X values captured into storage or
//! observed at outputs.

use crate::error::SimError;
use crate::logic::{lut_eval_x, Logic};
use crate::place::CellLoc;
use rtm_fpga::cell::LogicCell;
use rtm_fpga::clb::CELLS_PER_CLB;
use rtm_fpga::geom::ClbCoord;
use rtm_fpga::routing::{fixed_link_rev, RouteNode, Wire};
use rtm_fpga::storage::StorageKind;
use rtm_fpga::Device;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Kinds of transparency violations the simulator can observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GlitchKind {
    /// Two paralleled drivers of one wire disagreed while known.
    DriverConflict,
    /// The combinational network failed to stabilise (oscillation).
    UnstableComb,
    /// A storage element captured an unknown value.
    XCaptured,
    /// An observed output was X.
    XObserved,
}

impl fmt::Display for GlitchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GlitchKind::DriverConflict => "driver-conflict",
            GlitchKind::UnstableComb => "unstable-comb",
            GlitchKind::XCaptured => "x-captured",
            GlitchKind::XObserved => "x-observed",
        };
        f.write_str(s)
    }
}

/// One recorded transparency violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Glitch {
    /// Clock cycle at which the event was observed.
    pub cycle: u64,
    /// What happened.
    pub kind: GlitchKind,
    /// Where (free-text location description).
    pub site: String,
}

#[derive(Debug, Clone)]
struct SimCell {
    loc: CellLoc,
    config: LogicCell,
    /// Driving cell locations per LUT pin (empty = undriven).
    pin_sources: [Vec<CellLoc>; 4],
    /// Driving cell locations of the CE pin.
    ce_sources: Vec<CellLoc>,
    /// Driving cell locations of the FF bypass pin.
    dx_sources: Vec<CellLoc>,
    lut_val: Logic,
    q: Logic,
}

/// The simulator. See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct DeviceSim {
    cells: Vec<SimCell>,
    by_loc: HashMap<CellLoc, usize>,
    /// Forced cell outputs (input feed cells); each input may be forced
    /// at several alias locations while its feed cell is being relocated.
    feeds: Vec<Vec<CellLoc>>,
    feed_values: Vec<Logic>,
    /// Observed outputs (name, location).
    outputs: Vec<(String, CellLoc)>,
    glitches: Vec<Glitch>,
    cycle: u64,
}

impl DeviceSim {
    /// Builds a simulator for the design currently on `dev`, using
    /// `placed` only to learn the feed-cell and output locations. Initial
    /// storage values come from the device's state bits.
    pub fn new(dev: &Device, placed: &crate::design::PlacedDesign) -> Self {
        let feeds: Vec<Vec<CellLoc>> = placed
            .placement
            .feed_locs
            .iter()
            .map(|l| vec![*l])
            .collect();
        let outputs = placed.output_locs();
        let mut sim = DeviceSim {
            cells: Vec::new(),
            by_loc: HashMap::new(),
            feed_values: vec![Logic::X; feeds.len()],
            feeds,
            outputs,
            glitches: Vec::new(),
            cycle: 0,
        };
        sim.rebuild(dev, true);
        sim
    }

    /// Re-reads structure from the device after a reconfiguration step.
    /// Existing cells keep their live storage state; cells that appeared
    /// start at X.
    pub fn sync(&mut self, dev: &Device) {
        self.rebuild(dev, false);
    }

    /// Clock cycles simulated.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// All transparency violations observed so far.
    pub fn glitches(&self) -> &[Glitch] {
        &self.glitches
    }

    /// Discards recorded glitches (e.g. after an intentional fault
    /// injection).
    pub fn clear_glitches(&mut self) {
        self.glitches.clear();
    }

    /// The storage value at a location, if a cell lives there.
    pub fn state_at(&self, loc: CellLoc) -> Option<Logic> {
        self.by_loc.get(&loc).map(|i| self.cells[*i].q)
    }

    /// The visible output value at a location.
    pub fn output_at(&self, loc: CellLoc) -> Option<Logic> {
        self.by_loc
            .get(&loc)
            .map(|i| self.cell_out(&self.cells[*i]))
    }

    /// Moves a feed (primary input) to a new location — used if an input
    /// feed cell is itself relocated. Clears any aliases.
    pub fn move_feed(&mut self, input: usize, new_loc: CellLoc) {
        self.feeds[input] = vec![new_loc];
    }

    /// Adds an alias location at which `input` is also forced — while a
    /// feed cell is being relocated both the original and the replica
    /// must present the input value.
    pub fn add_feed_alias(&mut self, input: usize, loc: CellLoc) {
        if !self.feeds[input].contains(&loc) {
            self.feeds[input].push(loc);
        }
    }

    /// Registers an additional forced feed location (e.g. when several
    /// designs share the device); returns its input index. The input
    /// vector of [`DeviceSim::step`] grows accordingly.
    pub fn push_feed(&mut self, loc: CellLoc) -> usize {
        self.feeds.push(vec![loc]);
        self.feed_values.push(Logic::X);
        self.feeds.len() - 1
    }

    /// Registers an additional observed output; returns its index.
    pub fn push_output(&mut self, name: impl Into<String>, loc: CellLoc) -> usize {
        self.outputs.push((name.into(), loc));
        self.outputs.len() - 1
    }

    /// Number of forced feeds (the required input width).
    pub fn feed_count(&self) -> usize {
        self.feeds.len()
    }

    /// Moves an observed output to a new location (after its producing
    /// cell was relocated).
    pub fn move_output(&mut self, index: usize, new_loc: CellLoc) {
        self.outputs[index].1 = new_loc;
    }

    /// Current primary-output values, in declaration order.
    pub fn outputs(&self) -> Vec<Logic> {
        self.outputs
            .iter()
            .map(|(_, loc)| self.output_at(*loc).unwrap_or(Logic::X))
            .collect()
    }

    fn rebuild(&mut self, dev: &Device, init_state_from_device: bool) {
        let old_q: HashMap<CellLoc, Logic> = self.cells.iter().map(|c| (c.loc, c.q)).collect();
        let mut cells = Vec::new();
        let mut by_loc = HashMap::new();
        for tile in dev.bounds().iter() {
            let clb = dev.clb(tile).expect("in bounds");
            for cell_idx in 0..CELLS_PER_CLB {
                let config = clb.cells[cell_idx];
                if !config.is_used() {
                    continue;
                }
                let loc = (tile, cell_idx);
                let pin_sources = [
                    trace_sources(dev, RouteNode::new(tile, Wire::CellIn(cell_idx as u8, 0))),
                    trace_sources(dev, RouteNode::new(tile, Wire::CellIn(cell_idx as u8, 1))),
                    trace_sources(dev, RouteNode::new(tile, Wire::CellIn(cell_idx as u8, 2))),
                    trace_sources(dev, RouteNode::new(tile, Wire::CellIn(cell_idx as u8, 3))),
                ];
                let ce_sources =
                    trace_sources(dev, RouteNode::new(tile, Wire::CellCe(cell_idx as u8)));
                let dx_sources =
                    trace_sources(dev, RouteNode::new(tile, Wire::CellDx(cell_idx as u8)));
                let q = if let Some(prev) = old_q.get(&loc) {
                    *prev
                } else if init_state_from_device {
                    Logic::known(dev.cell_state(tile, cell_idx).expect("in bounds"))
                } else {
                    Logic::X
                };
                by_loc.insert(loc, cells.len());
                cells.push(SimCell {
                    loc,
                    config,
                    pin_sources,
                    ce_sources,
                    dx_sources,
                    lut_val: Logic::X,
                    q,
                });
            }
        }
        self.cells = cells;
        self.by_loc = by_loc;
    }

    fn cell_out(&self, cell: &SimCell) -> Logic {
        if let Some(i) = self.feeds.iter().position(|f| f.contains(&cell.loc)) {
            return self.feed_values[i];
        }
        if cell.config.registered_output {
            cell.q
        } else {
            cell.lut_val
        }
    }

    fn resolve_sources_at(
        &self,
        sources: &[CellLoc],
        conflicts: &mut Vec<String>,
        site: &str,
    ) -> Logic {
        if sources.is_empty() {
            return Logic::X;
        }
        let values: Vec<Logic> = sources
            .iter()
            .map(|loc| {
                self.by_loc
                    .get(loc)
                    .map(|i| self.cell_out(&self.cells[*i]))
                    .unwrap_or(Logic::X)
            })
            .collect();
        let resolved = Logic::resolve_all(values.iter().copied());
        if resolved.is_x() && values.contains(&Logic::Zero) && values.contains(&Logic::One) {
            conflicts.push(format!("{site} <- {sources:?}"));
        }
        resolved
    }

    fn resolve_sources(&self, sources: &[CellLoc], conflicts: &mut Vec<String>) -> Logic {
        self.resolve_sources_at(sources, conflicts, "pin")
    }

    /// Fixpoint combinational settle; returns the driver-conflict sites
    /// seen in the final pass. Order-free and tolerant of the transient
    /// topologies mid-relocation.
    fn settle_comb(&mut self) -> Vec<String> {
        let mut conflicts = Vec::new();
        let max_passes = self.cells.len() + 8;
        let mut settled = false;
        for _ in 0..max_passes {
            conflicts.clear();
            let mut changed = false;
            let new_vals: Vec<Logic> = self
                .cells
                .iter()
                .map(|cell| {
                    let mut addr = [Logic::X; 4];
                    for (p, srcs) in cell.pin_sources.iter().enumerate() {
                        let site = format!("{}/{}.{p}", cell.loc.0, cell.loc.1);
                        addr[p] = self.resolve_sources_at(srcs, &mut conflicts, &site);
                    }
                    lut_eval_x(&cell.config.lut, addr)
                })
                .collect();
            for (cell, v) in self.cells.iter_mut().zip(&new_vals) {
                if cell.lut_val != *v {
                    cell.lut_val = *v;
                    changed = true;
                }
            }
            if !changed {
                settled = true;
                break;
            }
        }
        if !settled {
            self.glitches.push(Glitch {
                cycle: self.cycle,
                kind: GlitchKind::UnstableComb,
                site: "combinational network".into(),
            });
        }
        conflicts
    }

    /// One clock cycle: apply inputs, settle LUTs, clock storage.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputWidthMismatch`] for a wrong input vector.
    pub fn step(&mut self, _dev: &Device, inputs: &[bool]) -> Result<(), SimError> {
        self.step_logic(&inputs.iter().map(|b| Logic::known(*b)).collect::<Vec<_>>())
    }

    /// Like [`DeviceSim::step`] but allows X inputs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InputWidthMismatch`] for a wrong input vector.
    pub fn step_logic(&mut self, inputs: &[Logic]) -> Result<(), SimError> {
        if inputs.len() != self.feeds.len() {
            return Err(SimError::InputWidthMismatch {
                expected: self.feeds.len(),
                actual: inputs.len(),
            });
        }
        self.feed_values.copy_from_slice(inputs);

        // Pre-edge settle.
        let mut conflicts = self.settle_comb();

        // Clock edge: capture D values simultaneously.
        let mut throwaway = Vec::new();
        let mut updates: Vec<(usize, Logic)> = Vec::new();
        for (i, cell) in self.cells.iter().enumerate() {
            if !cell.config.storage.is_sequential() {
                continue;
            }
            let d = if cell.config.d_bypass {
                self.resolve_sources(&cell.dx_sources, &mut throwaway)
            } else {
                cell.lut_val
            };
            let enable = if cell.config.uses_ce {
                self.resolve_sources(&cell.ce_sources, &mut throwaway)
            } else {
                match cell.config.storage {
                    // Free-running FF: always captures.
                    StorageKind::FlipFlop => Logic::One,
                    // A latch without a routed enable holds.
                    _ => Logic::Zero,
                }
            };
            let next = match enable {
                Logic::One => d,
                Logic::Zero => cell.q,
                Logic::X => {
                    if cell.q == d {
                        cell.q
                    } else {
                        Logic::X
                    }
                }
            };
            if next != cell.q {
                updates.push((i, next));
            }
        }
        for (i, v) in updates {
            if v.is_x() && !self.cells[i].q.is_x() {
                self.glitches.push(Glitch {
                    cycle: self.cycle,
                    kind: GlitchKind::XCaptured,
                    site: format!("{}/{}", self.cells[i].loc.0, self.cells[i].loc.1),
                });
            }
            self.cells[i].q = v;
        }

        // Post-edge re-settle so observations reflect the new state (the
        // value a register or pad would see just before the next edge).
        let post = self.settle_comb();
        conflicts.extend(post);
        conflicts.sort();
        conflicts.dedup();
        for site in conflicts {
            self.glitches.push(Glitch {
                cycle: self.cycle,
                kind: GlitchKind::DriverConflict,
                site,
            });
        }

        // Observe outputs.
        for (name, loc) in &self.outputs {
            let v = self
                .by_loc
                .get(loc)
                .map(|i| self.cell_out(&self.cells[*i]))
                .unwrap_or(Logic::X);
            if v.is_x() {
                self.glitches.push(Glitch {
                    cycle: self.cycle,
                    kind: GlitchKind::XObserved,
                    site: name.clone(),
                });
            }
        }
        self.cycle += 1;
        Ok(())
    }
}

/// All cell outputs that (transitively) drive `pin` through active PIPs
/// and fixed links, following the signal flow backwards.
pub fn trace_sources(dev: &Device, pin: RouteNode) -> Vec<CellLoc> {
    let mut sources = BTreeSet::new();
    let mut seen = BTreeSet::new();
    let mut stack = vec![pin];
    while let Some(node) = stack.pop() {
        if !seen.insert(node) {
            continue;
        }
        if let Wire::CellOut(c) = node.wire {
            sources.insert((node.tile, c as usize));
            continue;
        }
        for pip in dev.pips_driving(node) {
            stack.push(pip.from_node());
        }
        if let Some(prev) = fixed_link_rev(node.tile, node.wire, dev.rows(), dev.cols()) {
            stack.push(prev);
        }
    }
    sources.into_iter().collect()
}

/// Convenience: map storage state of every sequential cell, keyed by
/// location (used by state-loss assertions).
pub fn storage_snapshot(sim: &DeviceSim) -> BTreeMap<ClbCoord, Vec<(usize, Logic)>> {
    let mut out: BTreeMap<ClbCoord, Vec<(usize, Logic)>> = BTreeMap::new();
    for cell in &sim.cells {
        if cell.config.storage.is_sequential() {
            out.entry(cell.loc.0)
                .or_default()
                .push((cell.loc.1, cell.q));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::implement;
    use rtm_fpga::geom::Rect;
    use rtm_fpga::part::Part;
    use rtm_netlist::random::RandomCircuit;
    use rtm_netlist::techmap::map_to_luts;

    fn setup(seed: u64) -> (Device, crate::design::PlacedDesign) {
        let netlist = RandomCircuit::free_running(6, 20, seed).generate();
        let mapped = map_to_luts(&netlist).unwrap();
        let mut dev = Device::new(Part::Xcv200);
        let region = Rect::new(ClbCoord::new(1, 1), 10, 10);
        let placed = implement(&mut dev, &mapped, region).unwrap();
        (dev, placed)
    }

    #[test]
    fn simulates_without_glitches_on_clean_design() {
        let (dev, placed) = setup(3);
        let mut sim = DeviceSim::new(&dev, &placed);
        for i in 0..50u64 {
            let inputs: Vec<bool> = (0..4).map(|b| (i >> b) & 1 == 1).collect();
            sim.step(&dev, &inputs).unwrap();
        }
        assert!(sim.glitches().is_empty(), "{:?}", sim.glitches());
        assert_eq!(sim.cycle(), 50);
    }

    #[test]
    fn outputs_are_known_after_first_cycle() {
        let (dev, placed) = setup(4);
        let mut sim = DeviceSim::new(&dev, &placed);
        sim.step(&dev, &[true, false, true, false]).unwrap();
        for v in sim.outputs() {
            assert!(!v.is_x(), "output X after clean start");
        }
    }

    #[test]
    fn input_width_checked() {
        let (dev, placed) = setup(5);
        let mut sim = DeviceSim::new(&dev, &placed);
        assert!(matches!(
            sim.step(&dev, &[true]),
            Err(SimError::InputWidthMismatch { .. })
        ));
    }

    #[test]
    fn sync_preserves_state_and_new_cells_start_x() {
        let (mut dev, placed) = setup(6);
        let mut sim = DeviceSim::new(&dev, &placed);
        for _ in 0..10 {
            sim.step(&dev, &[true, true, false, false]).unwrap();
        }
        let before = storage_snapshot(&sim);

        // Configure a brand-new sequential cell somewhere free.
        let free = ClbCoord::new(15, 15);
        let cfg = LogicCell {
            lut: rtm_fpga::lut::Lut::passthrough(0),
            storage: StorageKind::FlipFlop,
            registered_output: true,
            ..LogicCell::default()
        };
        dev.set_cell(free, 0, cfg).unwrap();
        sim.sync(&dev);

        let after = storage_snapshot(&sim);
        for (tile, states) in &before {
            assert_eq!(after.get(tile), Some(states), "state lost at {tile}");
        }
        assert_eq!(
            sim.state_at((free, 0)),
            Some(Logic::X),
            "new cell starts unknown"
        );
    }

    #[test]
    fn push_feed_and_output_extend_the_interface() {
        let (dev, placed) = setup(8);
        let mut sim = DeviceSim::new(&dev, &placed);
        let base = sim.feed_count();
        // Register an extra forced feed at a fresh location.
        let mut dev2 = dev.clone();
        let extra = (ClbCoord::new(20, 20), 0);
        dev2.set_cell(extra.0, extra.1, crate::design::feed_cell_config())
            .unwrap();
        let idx = sim.push_feed(extra);
        assert_eq!(idx, base);
        let out_idx = sim.push_output("extra", extra);
        sim.sync(&dev2);
        let mut inputs = vec![true; sim.feed_count()];
        inputs[idx] = true;
        sim.step(&dev2, &inputs).unwrap();
        assert_eq!(sim.outputs()[out_idx], Logic::One, "forced value observed");
    }

    #[test]
    fn step_logic_accepts_x_inputs() {
        let (dev, placed) = setup(9);
        let mut sim = DeviceSim::new(&dev, &placed);
        let width = sim.feed_count();
        let inputs = vec![Logic::X; width];
        sim.step_logic(&inputs).unwrap();
        // X inputs may propagate to outputs; that is an observation, not
        // an error.
        assert_eq!(sim.cycle(), 1);
    }

    /// Configures two constant driver cells (t0 cells 0 and 3) whose
    /// outputs are paralleled onto pin 0 of a consumer cell at t1, plus a
    /// minimal placed design elsewhere so the sim has a feed and output.
    fn parallel_driver_fixture(second_value: bool) -> (Device, crate::design::PlacedDesign) {
        let mut dev = Device::new(Part::Xcv50);
        let netlist = {
            let mut n = rtm_netlist::Netlist::new("shim");
            let a = n.add_input("a");
            n.add_output("o", a);
            n
        };
        let mapped = map_to_luts(&netlist).unwrap();
        let placed = implement(&mut dev, &mapped, Rect::new(ClbCoord::new(10, 10), 2, 2)).unwrap();

        let t0 = ClbCoord::new(1, 1);
        let t1 = ClbCoord::new(1, 2);
        let first = LogicCell {
            lut: rtm_fpga::lut::Lut::constant(true),
            ..LogicCell::default()
        };
        let second = crate::design::mark_used(LogicCell {
            lut: rtm_fpga::lut::Lut::constant(second_value),
            ..LogicCell::default()
        });
        let consumer = LogicCell {
            lut: rtm_fpga::lut::Lut::passthrough(0),
            ..LogicCell::default()
        };
        dev.set_cell(t0, 0, first).unwrap();
        dev.set_cell(t0, 3, second).unwrap();
        dev.set_cell(t1, 0, consumer).unwrap();
        // Both drivers reach CellIn(0,0) of t1: In(W,0) and In(W,4) both
        // satisfy p == (i + c) % 4 = 0. Out(E,0) is drivable by cell 0,
        // Out(E,4) by cell 3 (i % 4 == (c + 1) % 4).
        use rtm_fpga::routing::{Dir, Pip};
        dev.add_pip(Pip::new(t0, Wire::CellOut(0), Wire::Out(Dir::East, 0)))
            .unwrap();
        dev.add_pip(Pip::new(t0, Wire::CellOut(3), Wire::Out(Dir::East, 4)))
            .unwrap();
        dev.add_pip(Pip::new(t1, Wire::In(Dir::West, 0), Wire::CellIn(0, 0)))
            .unwrap();
        dev.add_pip(Pip::new(t1, Wire::In(Dir::West, 4), Wire::CellIn(0, 0)))
            .unwrap();
        (dev, placed)
    }

    #[test]
    fn driver_conflict_detected() {
        let (dev, placed) = parallel_driver_fixture(false);
        let mut sim = DeviceSim::new(&dev, &placed);
        sim.step(&dev, &[false]).unwrap();
        assert!(
            sim.glitches()
                .iter()
                .any(|g| g.kind == GlitchKind::DriverConflict),
            "conflict not detected: {:?}",
            sim.glitches()
        );
    }

    #[test]
    fn agreeing_parallel_drivers_do_not_glitch() {
        let (dev, placed) = parallel_driver_fixture(true);
        let mut sim = DeviceSim::new(&dev, &placed);
        sim.step(&dev, &[false]).unwrap();
        assert!(!sim
            .glitches()
            .iter()
            .any(|g| g.kind == GlitchKind::DriverConflict));
        sim.clear_glitches();
        assert!(sim.glitches().is_empty());
    }
}
