//! Three-valued logic: 0, 1 and X (unknown/conflict).
//!
//! X serves two purposes in the transparency experiments:
//!
//! * a replica cell whose state has not yet been captured holds X —
//!   connecting its output too early provably corrupts the observation;
//! * two paralleled drivers that momentarily disagree resolve to X — the
//!   digital abstraction of the glitch the paper's procedure is designed
//!   to avoid.

use rtm_fpga::lut::{Lut, LUT_INPUTS};
use std::fmt;

/// A three-valued logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown / conflicting.
    #[default]
    X,
}

impl Logic {
    /// Converts a known boolean.
    pub fn known(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// The boolean value, if known.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X => None,
        }
    }

    /// True if the value is unknown.
    pub fn is_x(self) -> bool {
        self == Logic::X
    }

    /// Resolution of two drivers on one wire: agreement keeps the value,
    /// disagreement (or any X) yields X.
    pub fn resolve(self, other: Logic) -> Logic {
        if self == other {
            self
        } else {
            Logic::X
        }
    }

    /// Resolves an iterator of drivers; no driver at all is X.
    pub fn resolve_all<I: IntoIterator<Item = Logic>>(drivers: I) -> Logic {
        let mut iter = drivers.into_iter();
        let first = match iter.next() {
            Some(v) => v,
            None => return Logic::X,
        };
        iter.fold(first, Logic::resolve)
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Logic::Zero => "0",
            Logic::One => "1",
            Logic::X => "X",
        };
        f.write_str(s)
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Logic {
        Logic::known(b)
    }
}

/// Evaluates a LUT under three-valued inputs: if every completion of the
/// X inputs produces the same output, that output is returned; otherwise
/// X.
///
/// ```
/// use rtm_sim::logic::{lut_eval_x, Logic};
/// use rtm_fpga::lut::Lut;
/// let and2 = Lut::from_fn(|i| i[0] && i[1]);
/// // 0 AND X is 0 regardless of X:
/// assert_eq!(lut_eval_x(&and2, [Logic::Zero, Logic::X, Logic::Zero, Logic::Zero]), Logic::Zero);
/// // 1 AND X is unknown:
/// assert_eq!(lut_eval_x(&and2, [Logic::One, Logic::X, Logic::Zero, Logic::Zero]), Logic::X);
/// ```
pub fn lut_eval_x(lut: &Lut, inputs: [Logic; LUT_INPUTS]) -> Logic {
    let x_positions: Vec<usize> = (0..LUT_INPUTS).filter(|i| inputs[*i].is_x()).collect();
    let mut base = [false; LUT_INPUTS];
    for i in 0..LUT_INPUTS {
        if let Some(b) = inputs[i].to_bool() {
            base[i] = b;
        }
    }
    let mut result: Option<bool> = None;
    for combo in 0..(1usize << x_positions.len()) {
        let mut ins = base;
        for (bit, pos) in x_positions.iter().enumerate() {
            ins[*pos] = (combo >> bit) & 1 == 1;
        }
        let out = lut.eval(ins);
        match result {
            None => result = Some(out),
            Some(prev) if prev != out => return Logic::X,
            _ => {}
        }
    }
    Logic::known(result.unwrap_or(false))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_rules() {
        assert_eq!(Logic::One.resolve(Logic::One), Logic::One);
        assert_eq!(Logic::Zero.resolve(Logic::Zero), Logic::Zero);
        assert_eq!(Logic::One.resolve(Logic::Zero), Logic::X);
        assert_eq!(Logic::One.resolve(Logic::X), Logic::X);
        assert_eq!(Logic::resolve_all([]), Logic::X);
        assert_eq!(Logic::resolve_all([Logic::One, Logic::One]), Logic::One);
        assert_eq!(
            Logic::resolve_all([Logic::One, Logic::Zero, Logic::One]),
            Logic::X
        );
    }

    #[test]
    fn bool_conversions() {
        assert_eq!(Logic::known(true), Logic::One);
        assert_eq!(Logic::from(false), Logic::Zero);
        assert_eq!(Logic::One.to_bool(), Some(true));
        assert_eq!(Logic::X.to_bool(), None);
        assert!(Logic::X.is_x());
    }

    #[test]
    fn lut_x_propagation_blocked_by_controlling_values() {
        let or2 = Lut::from_fn(|i| i[0] || i[1]);
        assert_eq!(
            lut_eval_x(&or2, [Logic::One, Logic::X, Logic::Zero, Logic::Zero]),
            Logic::One
        );
        assert_eq!(
            lut_eval_x(&or2, [Logic::Zero, Logic::X, Logic::Zero, Logic::Zero]),
            Logic::X
        );
    }

    #[test]
    fn lut_ignores_x_on_unused_inputs() {
        let pass0 = Lut::passthrough(0);
        assert_eq!(
            lut_eval_x(&pass0, [Logic::One, Logic::X, Logic::X, Logic::X]),
            Logic::One
        );
    }

    #[test]
    fn all_x_on_constant_lut_is_known() {
        let c = Lut::constant(true);
        assert_eq!(lut_eval_x(&c, [Logic::X; 4]), Logic::One);
    }

    #[test]
    fn display() {
        assert_eq!(Logic::X.to_string(), "X");
        assert_eq!(Logic::One.to_string(), "1");
    }
}
