//! Cell placement: packing mapped cells into a rectangular CLB region.
//!
//! The placer is deliberately simple — row-major packing at a configurable
//! density — because the experiments care about *where cells are and how
//! far nets travel*, not about placement optimality. Primary inputs become
//! *feed cells* (pass-through LUTs whose outputs the simulator forces), so
//! every connection in the design is a real routed net.

use crate::error::SimError;
use rtm_fpga::clb::CELLS_PER_CLB;
use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_netlist::techmap::MappedNetlist;

/// A cell slot: tile plus cell index within the CLB.
pub type CellLoc = (ClbCoord, usize);

/// Placement of a mapped design (plus its input feed cells and output
/// tap cells) in a region.
///
/// *Feed* cells stand in for input pads: pass-through LUTs whose outputs
/// the simulator forces. *Tap* cells stand in for output pads: pass-
/// through LUTs that consume the producing net, so primary outputs are
/// routed sinks that stay put when the producing cell is relocated —
/// exactly like the IOBs of the real device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// The region the design occupies.
    pub region: Rect,
    /// Location of each mapped cell, indexed like `MappedNetlist::cells`.
    pub cell_locs: Vec<CellLoc>,
    /// Location of the feed cell for each primary input.
    pub feed_locs: Vec<CellLoc>,
    /// Location of the tap cell for each primary output.
    pub tap_locs: Vec<CellLoc>,
    /// Cells used per CLB (the packing density applied).
    pub density: usize,
}

impl Placement {
    /// All slots of `region` in row-major, cell-minor order, using
    /// `density` cells per CLB (1–4).
    pub fn slots(region: Rect, density: usize) -> impl Iterator<Item = CellLoc> {
        let density = density.clamp(1, CELLS_PER_CLB);
        region
            .iter()
            .flat_map(move |tile| (0..density).map(move |c| (tile, c)))
    }

    /// Cell capacity of `region` at `density`.
    pub fn capacity(region: Rect, density: usize) -> usize {
        region.area() as usize * density.clamp(1, CELLS_PER_CLB)
    }

    /// The tiles actually occupied by at least one cell.
    pub fn occupied_tiles(&self) -> Vec<ClbCoord> {
        let mut tiles: Vec<ClbCoord> = self
            .cell_locs
            .iter()
            .chain(self.feed_locs.iter())
            .chain(self.tap_locs.iter())
            .map(|(t, _)| *t)
            .collect();
        tiles.sort();
        tiles.dedup();
        tiles
    }
}

/// Packs `design` (feeds first, then cells) into `region` at the highest
/// density that fits, preferring lower densities (which spreads logic and
/// eases routing).
///
/// # Errors
///
/// Returns [`SimError::RegionTooSmall`] if even density 4 cannot hold the
/// design.
pub fn place(design: &MappedNetlist, region: Rect, bounds: Rect) -> Result<Placement, SimError> {
    if !bounds.contains_rect(&region) {
        return Err(SimError::RegionOutOfBounds { region });
    }
    let n_taps = design.outputs.len();
    let needed = design.n_inputs + n_taps + design.cells.len();
    let density = (1..=CELLS_PER_CLB)
        .find(|d| Placement::capacity(region, *d) >= needed)
        .ok_or(SimError::RegionTooSmall {
            cells: needed,
            capacity: Placement::capacity(region, CELLS_PER_CLB),
            region,
        })?;
    let mut slots = Placement::slots(region, density);
    let feed_locs: Vec<CellLoc> = slots.by_ref().take(design.n_inputs).collect();
    let tap_locs: Vec<CellLoc> = slots.by_ref().take(n_taps).collect();
    let cell_locs: Vec<CellLoc> = slots.by_ref().take(design.cells.len()).collect();
    debug_assert_eq!(feed_locs.len(), design.n_inputs);
    debug_assert_eq!(tap_locs.len(), n_taps);
    debug_assert_eq!(cell_locs.len(), design.cells.len());
    Ok(Placement {
        region,
        cell_locs,
        feed_locs,
        tap_locs,
        density,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_netlist::random::RandomCircuit;
    use rtm_netlist::techmap::map_to_luts;

    fn small_design() -> MappedNetlist {
        let n = RandomCircuit::free_running(4, 12, 5).generate();
        map_to_luts(&n).unwrap()
    }

    #[test]
    fn placement_fits_region() {
        let design = small_design();
        let region = Rect::new(ClbCoord::new(2, 3), 6, 6);
        let bounds = Rect::new(ClbCoord::new(0, 0), 16, 24);
        let p = place(&design, region, bounds).unwrap();
        assert_eq!(p.cell_locs.len(), design.cells.len());
        assert_eq!(p.feed_locs.len(), design.n_inputs);
        for (tile, cell) in p.cell_locs.iter().chain(p.feed_locs.iter()) {
            assert!(region.contains(*tile));
            assert!(*cell < CELLS_PER_CLB);
        }
    }

    #[test]
    fn distinct_slots() {
        let design = small_design();
        let region = Rect::new(ClbCoord::new(0, 0), 8, 8);
        let bounds = Rect::new(ClbCoord::new(0, 0), 16, 24);
        let p = place(&design, region, bounds).unwrap();
        let mut all: Vec<CellLoc> = p
            .feed_locs
            .iter()
            .chain(p.cell_locs.iter())
            .copied()
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "no slot reused");
    }

    #[test]
    fn prefers_low_density() {
        let design = small_design(); // ~20 cells
        let region = Rect::new(ClbCoord::new(0, 0), 8, 8); // 64 tiles
        let bounds = Rect::new(ClbCoord::new(0, 0), 16, 24);
        let p = place(&design, region, bounds).unwrap();
        assert_eq!(p.density, 1, "plenty of room: one cell per CLB");
    }

    #[test]
    fn too_small_region_rejected() {
        let design = small_design();
        let region = Rect::new(ClbCoord::new(0, 0), 2, 2); // 16 slots max
        let bounds = Rect::new(ClbCoord::new(0, 0), 16, 24);
        let err = place(&design, region, bounds).unwrap_err();
        assert!(matches!(err, SimError::RegionTooSmall { .. }));
    }

    #[test]
    fn out_of_bounds_region_rejected() {
        let design = small_design();
        let region = Rect::new(ClbCoord::new(10, 20), 10, 10);
        let bounds = Rect::new(ClbCoord::new(0, 0), 16, 24);
        let err = place(&design, region, bounds).unwrap_err();
        assert!(matches!(err, SimError::RegionOutOfBounds { .. }));
    }

    #[test]
    fn capacity_math() {
        let r = Rect::new(ClbCoord::new(0, 0), 3, 3);
        assert_eq!(Placement::capacity(r, 1), 9);
        assert_eq!(Placement::capacity(r, 4), 36);
        assert_eq!(Placement::slots(r, 2).count(), 18);
    }
}
