//! Static timing over routed paths: the Fig. 6 analysis.
//!
//! "Since different paths are used while paralleling the original and
//! replica interconnections, each of them will have a different
//! propagation delay. … the signal at the input of the CLB destination
//! will show an interval of fuzziness. … for transient analysis, the
//! propagation delay associated to the parallel interconnections shall be
//! the longer of the two paths." (paper §3)

use crate::route::{NetDb, NetId};
use rtm_fpga::routing::RouteNode;
use std::fmt;

/// Timing of one sink pin reached by two paralleled paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelPathTiming {
    /// Delay through the original path, picoseconds.
    pub original_ps: u64,
    /// Delay through the replica path, picoseconds.
    pub replica_ps: u64,
}

impl ParallelPathTiming {
    /// The fuzziness window: the interval during which the two arrivals
    /// may disagree after a source transition (Fig. 6).
    pub fn fuzziness_ps(&self) -> u64 {
        self.original_ps.abs_diff(self.replica_ps)
    }

    /// The effective propagation delay while paralleled: the longer of
    /// the two paths (paper §3, last paragraph).
    pub fn effective_delay_ps(&self) -> u64 {
        self.original_ps.max(self.replica_ps)
    }

    /// Start of the fuzziness window after a source transition.
    pub fn window_start_ps(&self) -> u64 {
        self.original_ps.min(self.replica_ps)
    }
}

impl fmt::Display for ParallelPathTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "orig {}ps / replica {}ps (fuzzy {}ps, effective {}ps)",
            self.original_ps,
            self.replica_ps,
            self.fuzziness_ps(),
            self.effective_delay_ps()
        )
    }
}

/// Computes the paralleled-path timing for `sink`, reached both by net
/// `original` and net `replica`. Returns `None` if either net misses the
/// sink.
pub fn parallel_timing(
    netdb: &NetDb,
    original: NetId,
    replica: NetId,
    sink: RouteNode,
) -> Option<ParallelPathTiming> {
    let original_ps = netdb.net(original)?.sink_delay_ps(sink)?;
    let replica_ps = netdb.net(replica)?.sink_delay_ps(sink)?;
    Some(ParallelPathTiming {
        original_ps,
        replica_ps,
    })
}

/// Worst sink delay of a net (its timing-critical connection), in
/// picoseconds. Returns `None` for sink-less nets.
pub fn critical_delay_ps(netdb: &NetDb, net: NetId) -> Option<u64> {
    let n = netdb.net(net)?;
    n.sinks().filter_map(|s| n.sink_delay_ps(s)).max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtm_fpga::geom::ClbCoord;
    use rtm_fpga::part::Part;
    use rtm_fpga::routing::Wire;
    use rtm_fpga::Device;

    fn node(r: u16, c: u16, wire: Wire) -> RouteNode {
        RouteNode::new(ClbCoord::new(r, c), wire)
    }

    #[test]
    fn fuzziness_math() {
        let t = ParallelPathTiming {
            original_ps: 900,
            replica_ps: 1500,
        };
        assert_eq!(t.fuzziness_ps(), 600);
        assert_eq!(t.effective_delay_ps(), 1500);
        assert_eq!(t.window_start_ps(), 900);
        assert!(t.to_string().contains("600"));
    }

    #[test]
    fn equal_paths_have_no_fuzziness() {
        let t = ParallelPathTiming {
            original_ps: 700,
            replica_ps: 700,
        };
        assert_eq!(t.fuzziness_ps(), 0);
        assert_eq!(t.effective_delay_ps(), 700);
    }

    #[test]
    fn parallel_timing_from_real_routes() {
        let mut dev = Device::new(Part::Xcv50);
        let mut db = crate::route::NetDb::new();
        let sink = node(5, 8, Wire::CellIn(0, 0));
        // Original: short path from an adjacent tile.
        let orig = db
            .route_net(&mut dev, node(5, 7, Wire::CellOut(0)), &[sink], None)
            .unwrap();
        // Replica: longer path from a distant tile, sharing the sink pin.
        let repl = db
            .route_net(&mut dev, node(10, 2, Wire::CellOut(0)), &[sink], None)
            .unwrap();
        let t = parallel_timing(&db, orig, repl, sink).unwrap();
        assert!(t.replica_ps > t.original_ps, "{t}");
        assert!(t.fuzziness_ps() > 0);
        assert_eq!(t.effective_delay_ps(), t.replica_ps);
    }

    #[test]
    fn critical_delay_is_worst_sink() {
        let mut dev = Device::new(Part::Xcv50);
        let mut db = crate::route::NetDb::new();
        let near = node(2, 3, Wire::CellIn(0, 1));
        let far = node(12, 18, Wire::CellIn(0, 3));
        let id = db
            .route_net(&mut dev, node(2, 2, Wire::CellOut(0)), &[near, far], None)
            .unwrap();
        let crit = critical_delay_ps(&db, id).unwrap();
        let near_d = db.net(id).unwrap().sink_delay_ps(near).unwrap();
        assert!(crit >= near_d);
        assert_eq!(
            crit,
            db.net(id).unwrap().sink_delay_ps(far).unwrap().max(near_d)
        );
    }

    #[test]
    fn missing_sink_yields_none() {
        let db = crate::route::NetDb::new();
        assert!(parallel_timing(&db, 0, 1, node(0, 0, Wire::CellIn(0, 0))).is_none());
        assert!(critical_delay_ps(&db, 0).is_none());
    }
}
