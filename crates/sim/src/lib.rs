//! # rtm-sim
//!
//! Implementation (place & route) and observation (simulation, timing) of
//! circuits on the Virtex-class device model.
//!
//! The paper's claims are *observational*: "no loss of information or
//! functional disturbance was observed during the execution of these
//! experiments" (§2). This crate is the instrument that makes those
//! observations in the reproduction:
//!
//! * [`place`] / [`route`] / [`design`] — implement a technology-mapped
//!   netlist on a device region: pack cells into CLBs, route every net
//!   through real PIPs and wire segments, and keep the net database
//!   editable (the relocation engine extends and retires nets live);
//! * [`devsim::DeviceSim`] — a cycle-accurate, three-valued (0/1/X)
//!   simulator that reads its structure *from the configuration memory
//!   itself*, resolves multi-driver wires (paralleled original/replica
//!   paths), flags driver conflicts and X-observations as glitch events,
//!   and is re-synchronised after every reconfiguration step;
//! * [`delay`] — static timing over routed paths, reproducing Fig. 6:
//!   while two paths are paralleled the arrival window is
//!   `|d_orig − d_replica|` and the effective delay is the maximum of the
//!   two;
//! * [`compare`] — lock-step equivalence running of the device against the
//!   golden netlist model, the transparency oracle.
//!
//! ## Example
//!
//! ```
//! use rtm_fpga::{Device, part::Part, geom::{ClbCoord, Rect}};
//! use rtm_netlist::{itc99, techmap};
//! use rtm_sim::design::implement;
//! use rtm_sim::devsim::DeviceSim;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dev = Device::new(Part::Xcv200);
//! let netlist = itc99::generate(itc99::profile("b02").unwrap(),
//!                               itc99::Variant::FreeRunning);
//! let mapped = techmap::map_to_luts(&netlist)?;
//! let region = Rect::new(ClbCoord::new(2, 2), 12, 12);
//! let placed = implement(&mut dev, &mapped, region)?;
//!
//! let mut sim = DeviceSim::new(&dev, &placed);
//! sim.step(&dev, &[true])?;
//! assert!(sim.glitches().is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod compare;
pub mod delay;
pub mod design;
pub mod devsim;
pub mod error;
pub mod logic;
pub mod place;
pub mod route;

pub use error::SimError;
pub use logic::Logic;
