//! Crate-level smoke tests: implementation and device simulation of a
//! small benchmark, without the full transparency harness.

use rtm_fpga::geom::{ClbCoord, Rect};
use rtm_fpga::part::Part;
use rtm_fpga::Device;
use rtm_netlist::itc99::{self, Variant};
use rtm_netlist::techmap::map_to_luts;
use rtm_sim::design::implement;
use rtm_sim::devsim::DeviceSim;
use rtm_sim::logic::Logic;

#[test]
fn b01_implements_and_simulates() {
    let netlist = itc99::generate(itc99::profile("b01").unwrap(), Variant::FreeRunning);
    let mapped = map_to_luts(&netlist).unwrap();
    let mut dev = Device::new(Part::Xcv200);
    let region = Rect::new(ClbCoord::new(1, 1), 12, 12);
    let placed = implement(&mut dev, &mapped, region).unwrap();
    let mut sim = DeviceSim::new(&dev, &placed);
    let inputs = vec![true; netlist.inputs().len()];
    for _ in 0..20 {
        sim.step(&dev, &inputs).unwrap();
    }
}

#[test]
fn x_state_resolution_is_conservative() {
    assert_eq!(
        Logic::known(true).resolve(Logic::known(true)),
        Logic::known(true)
    );
    assert!(Logic::known(true).resolve(Logic::known(false)).is_x());
    assert!(Logic::X.resolve(Logic::known(true)).is_x());
}
