//! # rtm — Run-Time Management of Logic Resources on Reconfigurable Systems
//!
//! Umbrella crate for the DATE 2003 reproduction (Gericota, Alves, Silva,
//! Ferreira). It re-exports every sub-crate so examples and integration
//! tests can reach the whole stack through a single dependency:
//!
//! * [`fpga`] — Virtex-class device and configuration-memory model
//! * [`bitstream`] — configuration packets and partial-bitstream diffing
//! * [`jtag`] — IEEE 1149.1 Boundary Scan port and timing model
//! * [`netlist`] — netlist IR, tech mapping and ITC'99-style benchmarks
//! * [`sim`] — event-driven simulator with glitch detection
//! * [`place`] — free-space management and defragmentation
//! * [`sched`] — on-line spatial/temporal task scheduling
//! * [`core`] — the paper's contribution: dynamic relocation + run-time
//!   manager
//! * [`service`] — the runtime service loop: trace-driven workloads
//!   closed over the manager, with threshold-triggered defragmentation
//! * [`fleet`] — the multi-device sharding layer: cross-device routing
//!   policies over per-device runtime services
//! * [`obs`] — observability: the deterministic event stream, metrics
//!   registry and wall-clock phase profiler
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end tour: place a circuit,
//! relocate a live CLB with the two-phase procedure, and verify that the
//! running function never glitched.

pub use rtm_bitstream as bitstream;
pub use rtm_core as core;
pub use rtm_fleet as fleet;
pub use rtm_fpga as fpga;
pub use rtm_jtag as jtag;
pub use rtm_netlist as netlist;
pub use rtm_obs as obs;
pub use rtm_place as place;
pub use rtm_sched as sched;
pub use rtm_service as service;
pub use rtm_sim as sim;
